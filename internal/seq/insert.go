package seq

import (
	"fmt"

	"iddqsyn/internal/circuit"
)

// InsertScan materialises the scan chain into the netlist: each flip-flop
// D input is driven through a scan multiplexer
//
//	D' = (D AND NOT SE) OR (SI AND SE)
//
// built from primitive gates (no MUX cell in the library), where SE is a
// new scan-enable primary input and SI is the previous element of the
// chain (the new scan-in primary input for the first element). The last
// element's Q is already observable through the core, and a dedicated
// scan-out buffer is added so the chain has an explicit output pin.
//
// chainOrder gives the scan order as indices into s.FFs (use
// OrderScanChain's result); nil uses declaration order. The returned
// design has the same flip-flops, a combinational core grown by four
// gates per flip-flop, and functional behaviour identical to the input
// when SE = 0 (the tests verify this by simulation).
func InsertScan(s *Sequential, chainOrder []int) (*Sequential, error) {
	n := s.NumFFs()
	if n == 0 {
		return nil, fmt.Errorf("seq: no flip-flops to chain")
	}
	if chainOrder == nil {
		chainOrder = make([]int, n)
		for i := range chainOrder {
			chainOrder[i] = i
		}
	}
	if len(chainOrder) != n {
		return nil, fmt.Errorf("seq: chain order covers %d of %d FFs", len(chainOrder), n)
	}
	seen := make([]bool, n)
	for _, i := range chainOrder {
		if i < 0 || i >= n || seen[i] {
			return nil, fmt.Errorf("seq: invalid chain order")
		}
		seen[i] = true
	}

	c := s.Comb
	used := make(map[string]bool, c.NumGates())
	for i := range c.Gates {
		used[c.Gates[i].Name] = true
	}
	unique := func(base string) string {
		if !used[base] {
			used[base] = true
			return base
		}
		for k := 1; ; k++ {
			name := fmt.Sprintf("%s_%d", base, k)
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
	seName := unique("scan_en")
	siName := unique("scan_in")
	soName := unique("scan_out")
	seInv := unique("scan_en_n")

	b := circuit.NewBuilder(s.Name + "_scan")
	// Original inputs.
	for _, id := range c.Inputs {
		b.AddInput(c.Gates[id].Name)
	}
	b.AddInput(seName)
	b.AddInput(siName)
	// Original gates.
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		b.AddGate(g.Name, g.Type, names...)
	}
	b.AddGate(seInv, circuit.Not, seName)

	// Scan multiplexers along the chain. The new FF data nets replace the
	// PPOs.
	newPPO := make(map[int]string, n) // FF index -> mux output name
	prevQ := siName
	for _, fi := range chainOrder {
		ff := s.FFs[fi]
		d := c.Gates[ff.PPO].Name
		q := c.Gates[ff.PPI].Name
		fn := unique(fmt.Sprintf("%s_func", ff.Name))
		sh := unique(fmt.Sprintf("%s_shift", ff.Name))
		mx := unique(fmt.Sprintf("%s_scanmux", ff.Name))
		b.AddGate(fn, circuit.And, d, seInv)
		b.AddGate(sh, circuit.And, prevQ, seName)
		b.AddGate(mx, circuit.Or, fn, sh)
		newPPO[fi] = mx
		prevQ = q
	}
	b.AddGate(soName, circuit.Buf, prevQ)

	// Outputs: true POs, the new FF data nets, the scan-out, and any PPO
	// that was also a true PO (still observed directly).
	for _, id := range s.PrimaryOutputs() {
		b.MarkOutput(c.Gates[id].Name)
	}
	for _, fi := range chainOrder {
		b.MarkOutput(newPPO[fi])
	}
	b.MarkOutput(soName)

	core, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("seq: scan insertion: %w", err)
	}
	ffs := make([]FF, n)
	for i, ff := range s.FFs {
		qg, _ := core.GateByName(c.Gates[ff.PPI].Name)
		dg, ok := core.GateByName(newPPO[i])
		if !ok || qg == nil {
			return nil, fmt.Errorf("seq: scan insertion lost FF %q", ff.Name)
		}
		ffs[i] = FF{Name: ff.Name, PPI: qg.ID, PPO: dg.ID}
	}
	return New(core.Name, core, ffs)
}

// ScanEnableInput returns the gate ID of a scan-inserted design's
// scan-enable input (the input named "scan_en*"), or -1.
func ScanEnableInput(s *Sequential) int {
	return findInput(s, "scan_en")
}

// ScanInInput returns the gate ID of the scan-in input, or -1.
func ScanInInput(s *Sequential) int {
	return findInput(s, "scan_in")
}

func findInput(s *Sequential, base string) int {
	// InsertScan names the port `base` or, if taken, `base_<k>`.
	for _, id := range s.Comb.Inputs {
		if s.IsPPI(id) {
			continue
		}
		name := s.Comb.Gates[id].Name
		if name == base {
			return id
		}
		if len(name) > len(base)+1 && name[:len(base)+1] == base+"_" && allDigits(name[len(base)+1:]) {
			return id
		}
	}
	return -1
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}
