package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuit"
)

// ReadBench parses an ISCAS89-style .bench netlist — the combinational
// format of package bench extended with flip-flop lines:
//
//	G7 = DFF(G14)
//
// The DFF's output net (G7) becomes a pseudo-primary input of the
// combinational core; its data net (G14) a pseudo-primary output.
func ReadBench(r io.Reader, defaultName string) (*Sequential, error) {
	// First pass: split DFF lines from the combinational text.
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var comb strings.Builder
	type dff struct{ q, d string }
	var dffs []dff
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		upper := strings.ToUpper(trimmed)
		if eq := strings.Index(upper, "="); eq >= 0 && strings.Contains(upper[eq:], "DFF") {
			q := strings.TrimSpace(trimmed[:eq])
			rest := trimmed[eq+1:]
			open := strings.IndexByte(rest, '(')
			closeP := strings.LastIndexByte(rest, ')')
			if open < 0 || closeP < open {
				return nil, fmt.Errorf("seq: line %d: malformed DFF line %q", lineno, trimmed)
			}
			d := strings.TrimSpace(rest[open+1 : closeP])
			if q == "" || d == "" || strings.Contains(d, ",") {
				return nil, fmt.Errorf("seq: line %d: DFF takes exactly one data net", lineno)
			}
			dffs = append(dffs, dff{q: q, d: d})
			continue
		}
		comb.WriteString(line)
		comb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: %w", err)
	}
	// The FF outputs become INPUT lines; the FF data nets OUTPUT lines
	// (unless the net is already observed).
	var extra strings.Builder
	for _, f := range dffs {
		fmt.Fprintf(&extra, "INPUT(%s)\n", f.q)
	}
	combText := comb.String()
	for _, f := range dffs {
		if !alreadyOutput(combText, f.d) {
			fmt.Fprintf(&extra, "OUTPUT(%s)\n", f.d)
		}
	}
	core, err := bench.Read(strings.NewReader(extra.String()+combText), defaultName)
	if err != nil {
		return nil, fmt.Errorf("seq: %w", err)
	}
	ffs := make([]FF, 0, len(dffs))
	for _, f := range dffs {
		qg, ok := core.GateByName(f.q)
		if !ok {
			return nil, fmt.Errorf("seq: DFF output %q vanished", f.q)
		}
		dg, ok := core.GateByName(f.d)
		if !ok {
			return nil, fmt.Errorf("seq: DFF data net %q undefined", f.d)
		}
		ffs = append(ffs, FF{Name: f.q, PPI: qg.ID, PPO: dg.ID})
	}
	return New(core.Name, core, ffs)
}

// alreadyOutput reports whether the combinational text already has an
// OUTPUT(net) line for the given net.
func alreadyOutput(text, net string) bool {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		u := strings.ToUpper(line)
		if strings.HasPrefix(u, "OUTPUT") {
			open := strings.IndexByte(line, '(')
			closeP := strings.LastIndexByte(line, ')')
			if open >= 0 && closeP > open && strings.TrimSpace(line[open+1:closeP]) == net {
				return true
			}
		}
	}
	return false
}

// WriteBench emits the sequential design in ISCAS89-style .bench format:
// true primary I/O declarations, DFF lines, then the combinational gates.
func WriteBench(w io.Writer, s *Sequential) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", s.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d flip-flops, %d gates\n",
		len(s.PrimaryInputs()), len(s.PrimaryOutputs()), len(s.FFs), s.Comb.NumLogicGates())
	c := s.Comb
	for _, id := range s.PrimaryInputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range s.PrimaryOutputs() {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	ffs := append([]FF(nil), s.FFs...)
	sortFFsByName(ffs)
	for _, ff := range ffs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.Gates[ff.PPI].Name, c.Gates[ff.PPO].Name)
	}
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
