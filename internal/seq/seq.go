// Package seq adds full-scan sequential designs to the synthesis flow.
// The paper's virtual-rail constraint exists partly because "circuits
// with memory elements may loose the memorized information" under rail
// perturbation (§3.1); this package models the standard DFT setting in
// which that matters: an ISCAS89-class sequential circuit whose flip-flops
// are all on a scan chain.
//
// Under full scan, every flip-flop output is controllable (a
// pseudo-primary input of the combinational core) and every flip-flop
// data input observable (a pseudo-primary output), so the IDDQ
// partitioning, ATPG and sensor sizing of the rest of this repository
// apply to the core unchanged. What changes is the test economics: each
// vector costs a scan-load of ChainLength clock cycles, which this
// package folds into the §3.4 test-application-time model, and the scan
// chain itself is wiring whose length the chain-ordering optimizer here
// minimises with the same separation metric as the partitioner.
package seq

import (
	"fmt"
	"sort"

	"iddqsyn/internal/circuit"
)

// FF is one scan flip-flop: its output drives PPI (an input gate of the
// combinational core) and its data input is driven by PPO (a core gate
// marked as output).
type FF struct {
	Name string
	PPI  int // gate ID of the core input this FF's Q drives
	PPO  int // gate ID of the core gate feeding this FF's D
}

// Sequential is a full-scan sequential design.
type Sequential struct {
	Name string
	Comb *circuit.Circuit // the combinational core
	FFs  []FF

	ppiSet map[int]bool
	ppoSet map[int]bool
}

// New assembles a Sequential from a combinational core and its flip-flop
// bindings. Every PPI must be a primary input of the core and every PPO
// one of its output-marked gates; a gate may serve several FFs' PPO but a
// PPI binds to exactly one FF.
func New(name string, comb *circuit.Circuit, ffs []FF) (*Sequential, error) {
	s := &Sequential{
		Name: name, Comb: comb, FFs: ffs,
		ppiSet: make(map[int]bool, len(ffs)),
		ppoSet: make(map[int]bool, len(ffs)),
	}
	isInput := make(map[int]bool, len(comb.Inputs))
	for _, id := range comb.Inputs {
		isInput[id] = true
	}
	isOutput := make(map[int]bool, len(comb.Outputs))
	for _, id := range comb.Outputs {
		isOutput[id] = true
	}
	for _, ff := range ffs {
		if !isInput[ff.PPI] {
			return nil, fmt.Errorf("seq: FF %q: PPI gate %d is not a core input", ff.Name, ff.PPI)
		}
		if s.ppiSet[ff.PPI] {
			return nil, fmt.Errorf("seq: FF %q: PPI gate %d bound twice", ff.Name, ff.PPI)
		}
		if !isOutput[ff.PPO] {
			return nil, fmt.Errorf("seq: FF %q: PPO gate %d is not output-marked", ff.Name, ff.PPO)
		}
		s.ppiSet[ff.PPI] = true
		s.ppoSet[ff.PPO] = true
	}
	return s, nil
}

// NumFFs returns the scan-chain length.
func (s *Sequential) NumFFs() int { return len(s.FFs) }

// PrimaryInputs returns the true primary inputs (core inputs that are not
// flip-flop outputs), in core order.
func (s *Sequential) PrimaryInputs() []int {
	var out []int
	for _, id := range s.Comb.Inputs {
		if !s.ppiSet[id] {
			out = append(out, id)
		}
	}
	return out
}

// PrimaryOutputs returns the true primary outputs (output-marked gates
// that do not feed a flip-flop), in core order. A gate both observed and
// feeding an FF counts as a primary output.
func (s *Sequential) PrimaryOutputs() []int {
	var out []int
	for _, id := range s.Comb.Outputs {
		if !s.ppoSet[id] {
			out = append(out, id)
		}
	}
	return out
}

// IsPPI reports whether a core input is a flip-flop output.
func (s *Sequential) IsPPI(id int) bool { return s.ppiSet[id] }

// IsPPO reports whether an output-marked gate feeds a flip-flop.
func (s *Sequential) IsPPO(id int) bool { return s.ppoSet[id] }

// String summarises the design.
func (s *Sequential) String() string {
	return fmt.Sprintf("%s: %d PIs, %d POs, %d FFs, %d gates, depth %d",
		s.Name, len(s.PrimaryInputs()), len(s.PrimaryOutputs()),
		len(s.FFs), s.Comb.NumLogicGates(), s.Comb.Depth())
}

// ScanOrder is a visiting order of the flip-flops plus its estimated
// wiring length: the sum of capped hop distances between consecutive
// FFs (each FF located at its PPO driver gate), the same separation
// metric as §3.3.
type ScanOrder struct {
	Order  []int // indices into Sequential.FFs
	Length int
}

// OrderScanChain orders the scan chain with a nearest-neighbour heuristic
// over the FF locations (greedy chaining from the FF nearest a primary
// input), bounded by rho like the separation parameter. It returns the
// optimized order and, for comparison, the declaration order's length.
func OrderScanChain(s *Sequential, rho int) (optimized ScanOrder, declared ScanOrder) {
	n := len(s.FFs)
	if n == 0 {
		return
	}
	if rho < 1 {
		rho = 1
	}
	// Pairwise capped distances between FF locations.
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		d := s.Comb.BoundedDistances(s.FFs[i].PPO, rho)
		for j := range dist {
			if i == j {
				continue
			}
			if v, ok := d[s.FFs[j].PPO]; ok {
				dist[i][j] = v
			} else {
				dist[i][j] = rho
			}
		}
	}

	length := func(order []int) int {
		sum := 0
		for k := 1; k < len(order); k++ {
			sum += dist[order[k-1]][order[k]]
		}
		return sum
	}

	declared.Order = make([]int, n)
	for i := range declared.Order {
		declared.Order[i] = i
	}
	declared.Length = length(declared.Order)

	// Start from the FF whose location is at the lowest level (nearest
	// the inputs, where the scan-in pad would sit); tie-break on index.
	levels := s.Comb.Levels()
	start := 0
	for i := 1; i < n; i++ {
		if levels[s.FFs[i].PPO] < levels[s.FFs[start].PPO] {
			start = i
		}
	}
	used := make([]bool, n)
	order := []int{start}
	used[start] = true
	for len(order) < n {
		cur := order[len(order)-1]
		best, bestD := -1, 0
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			if best == -1 || dist[cur][j] < bestD {
				best, bestD = j, dist[cur][j]
			}
		}
		used[best] = true
		order = append(order, best)
	}
	optimized.Order = order
	optimized.Length = length(order)
	return optimized, declared
}

// ScanTestTime extends the §3.4 test-application-time model to full scan:
// each vector costs a scan load of ChainLength shift cycles at the scan
// clock period, then the settled-logic time D_BIC plus the slowest
// sensor's settling. (Scan-out of the previous response overlaps the next
// scan-in, the standard overlap.)
func ScanTestTime(nVectors, chainLength int, scanClock, dBIC, settle float64) (float64, error) {
	if nVectors < 1 || chainLength < 0 {
		return 0, fmt.Errorf("seq: bad vector/chain counts")
	}
	if scanClock <= 0 || dBIC <= 0 || settle < 0 {
		return 0, fmt.Errorf("seq: non-positive times")
	}
	perVector := float64(chainLength)*scanClock + dBIC + settle
	return float64(nVectors) * perVector, nil
}

// sortFFsByName normalises FF order for deterministic serialisation.
func sortFFsByName(ffs []FF) {
	sort.Slice(ffs, func(i, j int) bool { return ffs[i].Name < ffs[j].Name })
}
