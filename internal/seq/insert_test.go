package seq

import (
	"math/rand"
	"strings"
	"testing"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/logicsim"
)

func s27Fixture(t *testing.T) *Sequential {
	t.Helper()
	s, err := ReadBench(strings.NewReader(s27Bench), "x")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertScanStructure(t *testing.T) {
	s := s27Fixture(t)
	scanned, err := InsertScan(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scanned.NumFFs() != s.NumFFs() {
		t.Fatalf("FFs = %d, want %d", scanned.NumFFs(), s.NumFFs())
	}
	// 4 gates per FF (func AND, shift AND, mux OR... plus shared NOT and
	// the scan-out buffer): 3n + 2 new gates.
	wantGates := s.Comb.NumLogicGates() + 3*s.NumFFs() + 2
	if got := scanned.Comb.NumLogicGates(); got != wantGates {
		t.Errorf("gates = %d, want %d", got, wantGates)
	}
	// Two new primary inputs: scan_en and scan_in.
	if got, want := len(scanned.PrimaryInputs()), len(s.PrimaryInputs())+2; got != want {
		t.Errorf("PIs = %d, want %d", got, want)
	}
	if ScanEnableInput(scanned) < 0 {
		t.Error("scan-enable input not found")
	}
	if ScanInInput(scanned) < 0 {
		t.Error("scan-in input not found")
	}
}

func TestInsertScanValidation(t *testing.T) {
	s := s27Fixture(t)
	if _, err := InsertScan(s, []int{0}); err == nil {
		t.Error("want error for short chain order")
	}
	if _, err := InsertScan(s, []int{0, 0, 1}); err == nil {
		t.Error("want error for duplicate chain entry")
	}
	if _, err := InsertScan(s, []int{0, 1, 9}); err == nil {
		t.Error("want error for out-of-range chain entry")
	}
	empty := s27Fixture(t)
	empty.FFs = nil
	if _, err := InsertScan(empty, nil); err == nil {
		t.Error("want error for chainless design")
	}
}

// applyAndRead simulates the core for one vector (map by input gate ID).
func applyAndRead(t *testing.T, c *circuit.Circuit, in map[int]bool) map[int]bool {
	t.Helper()
	sim := logicsim.New(c)
	vec := make([]bool, len(c.Inputs))
	for i, id := range c.Inputs {
		vec[i] = in[id]
	}
	if err := sim.ApplyBits(vec); err != nil {
		t.Fatal(err)
	}
	out := map[int]bool{}
	for _, o := range c.Outputs {
		out[o] = sim.Value(o) == logicsim.One
	}
	return out
}

// With scan-enable low, the scanned design's next-state and output
// functions must equal the original's for random inputs and states.
func TestInsertScanFunctionalModeEquivalent(t *testing.T) {
	s := s27Fixture(t)
	scanned, err := InsertScan(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	se := ScanEnableInput(scanned)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 64; trial++ {
		// Random primary inputs and FF states, same on both designs.
		origIn := map[int]bool{}
		scanIn := map[int]bool{se: false}
		for i, id := range s.PrimaryInputs() {
			v := rng.Intn(2) == 1
			origIn[id] = v
			scanIn[scanned.PrimaryInputs()[i]] = v
		}
		for i, ff := range s.FFs {
			v := rng.Intn(2) == 1
			origIn[ff.PPI] = v
			scanIn[scanned.FFs[i].PPI] = v
		}
		origOut := applyAndRead(t, s.Comb, origIn)
		scanOut := applyAndRead(t, scanned.Comb, scanIn)
		// Compare true POs by name.
		for _, o := range s.PrimaryOutputs() {
			name := s.Comb.Gates[o].Name
			g, ok := scanned.Comb.GateByName(name)
			if !ok {
				t.Fatalf("output %s lost", name)
			}
			if origOut[o] != scanOut[g.ID] {
				t.Fatalf("trial %d: PO %s differs in functional mode", trial, name)
			}
		}
		// Compare next-state functions (original PPO vs scan-mux output).
		for i, ff := range s.FFs {
			if origOut[ff.PPO] != scanOut[scanned.FFs[i].PPO] {
				t.Fatalf("trial %d: FF %s next-state differs in functional mode", trial, ff.Name)
			}
		}
	}
}

// With scan-enable high, the chain must shift: FF i's next state equals
// the previous chain element's current state (scan-in for the head).
func TestInsertScanShiftMode(t *testing.T) {
	s := s27Fixture(t)
	order := []int{2, 0, 1} // deliberately non-trivial chain order
	scanned, err := InsertScan(s, order)
	if err != nil {
		t.Fatal(err)
	}
	se := ScanEnableInput(scanned)
	si := ScanInInput(scanned)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 32; trial++ {
		in := map[int]bool{se: true, si: rng.Intn(2) == 1}
		for _, id := range scanned.PrimaryInputs() {
			if id != se && id != si {
				in[id] = rng.Intn(2) == 1
			}
		}
		state := make([]bool, len(scanned.FFs))
		for i, ff := range scanned.FFs {
			state[i] = rng.Intn(2) == 1
			in[ff.PPI] = state[i]
		}
		out := applyAndRead(t, scanned.Comb, in)
		prev := in[si]
		for _, fi := range order {
			ff := scanned.FFs[fi]
			if out[ff.PPO] != prev {
				t.Fatalf("trial %d: FF %s next-state %v, want shifted %v",
					trial, ff.Name, out[ff.PPO], prev)
			}
			prev = state[fi]
		}
	}
}

func TestInsertScanRoundTripsThroughBench(t *testing.T) {
	s := s27Fixture(t)
	scanned, err := InsertScan(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, scanned); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBench(strings.NewReader(sb.String()), "x")
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if back.NumFFs() != scanned.NumFFs() ||
		back.Comb.NumLogicGates() != scanned.Comb.NumLogicGates() {
		t.Error("scan-inserted design does not round-trip")
	}
}
