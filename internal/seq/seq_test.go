package seq

import (
	"strings"
	"testing"

	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
)

const s27Bench = `# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = OR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
`

func TestReadBenchS27(t *testing.T) {
	s, err := ReadBench(strings.NewReader(s27Bench), "x")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "s27" {
		t.Errorf("name = %q", s.Name)
	}
	if s.NumFFs() != 3 {
		t.Fatalf("FFs = %d, want 3", s.NumFFs())
	}
	if got := len(s.PrimaryInputs()); got != 4 {
		t.Errorf("PIs = %d, want 4", got)
	}
	if got := len(s.PrimaryOutputs()); got != 1 {
		t.Errorf("POs = %d, want 1", got)
	}
	// The core sees PIs + FFs as inputs.
	if got := len(s.Comb.Inputs); got != 7 {
		t.Errorf("core inputs = %d, want 7", got)
	}
	// G10, G11, G13 must be output-marked (PPOs); G17 the true PO.
	for _, name := range []string{"G10", "G11", "G13"} {
		g, ok := s.Comb.GateByName(name)
		if !ok || !s.Comb.IsOutput(g.ID) || !s.IsPPO(g.ID) {
			t.Errorf("%s should be an output-marked PPO", name)
		}
	}
	g17, _ := s.Comb.GateByName("G17")
	if s.IsPPO(g17.ID) {
		t.Error("G17 is a true PO, not a PPO")
	}
	// FF outputs are PPIs.
	for _, name := range []string{"G5", "G6", "G7"} {
		g, ok := s.Comb.GateByName(name)
		if !ok || !s.IsPPI(g.ID) {
			t.Errorf("%s should be a PPI", name)
		}
	}
}

func TestReadBenchDFFFeedingOutput(t *testing.T) {
	// A DFF whose data net is also a true PO must not be double-marked.
	src := `INPUT(a)
OUTPUT(y)
q = DFF(y)
y = NAND(a, q)
`
	s, err := ReadBench(strings.NewReader(src), "loop")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFFs() != 1 {
		t.Fatalf("FFs = %d", s.NumFFs())
	}
	// y is both a PO (observed) and the FF's PPO; PrimaryOutputs treats
	// PPO-fed gates as pseudo only, so y is not listed as a true PO here
	// (it feeds the FF) — the design still has the output marked in the
	// core.
	y, _ := s.Comb.GateByName("y")
	if !s.Comb.IsOutput(y.ID) || !s.IsPPO(y.ID) {
		t.Error("y must stay output-marked and be the FF's PPO")
	}
}

func TestReadBenchErrors(t *testing.T) {
	cases := map[string]string{
		"malformed dff":  "INPUT(a)\nOUTPUT(y)\nq = DFF y\ny = NOT(a)\n",
		"two-input dff":  "INPUT(a)\nOUTPUT(y)\nq = DFF(a, y)\ny = NOT(a)\n",
		"undefined data": "INPUT(a)\nOUTPUT(y)\nq = DFF(zzz)\ny = NAND(a, q)\n",
	}
	for name, src := range cases {
		if _, err := ReadBench(strings.NewReader(src), "x"); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	s1, err := ReadBench(strings.NewReader(s27Bench), "x")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, s1); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadBench(strings.NewReader(sb.String()), "x")
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, sb.String())
	}
	if s2.NumFFs() != s1.NumFFs() ||
		len(s2.PrimaryInputs()) != len(s1.PrimaryInputs()) ||
		len(s2.PrimaryOutputs()) != len(s1.PrimaryOutputs()) ||
		s2.Comb.NumLogicGates() != s1.Comb.NumLogicGates() {
		t.Errorf("round trip changed the design: %v vs %v", s2, s1)
	}
}

func TestNewValidation(t *testing.T) {
	s, err := ReadBench(strings.NewReader(s27Bench), "x")
	if err != nil {
		t.Fatal(err)
	}
	// PPI not an input.
	g9, _ := s.Comb.GateByName("G9")
	if _, err := New("bad", s.Comb, []FF{{Name: "f", PPI: g9.ID, PPO: s.FFs[0].PPO}}); err == nil {
		t.Error("want error for PPI that is not a core input")
	}
	// PPO not output-marked.
	g14, _ := s.Comb.GateByName("G14")
	if _, err := New("bad", s.Comb, []FF{{Name: "f", PPI: s.FFs[0].PPI, PPO: g14.ID}}); err == nil {
		t.Error("want error for PPO that is not output-marked")
	}
	// Duplicate PPI.
	dup := []FF{s.FFs[0], {Name: "f2", PPI: s.FFs[0].PPI, PPO: s.FFs[1].PPO}}
	if _, err := New("bad", s.Comb, dup); err == nil {
		t.Error("want error for PPI bound twice")
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	spec := Spec{Name: "t", Inputs: 10, Outputs: 5, FFs: 8, Gates: 200, Depth: 12, Seed: 3}
	s, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.PrimaryInputs()); got != 10 {
		t.Errorf("PIs = %d, want 10", got)
	}
	if s.NumFFs() != 8 {
		t.Errorf("FFs = %d, want 8", s.NumFFs())
	}
	if got := s.Comb.NumLogicGates(); got != 200 {
		t.Errorf("gates = %d, want 200", got)
	}
	if got := s.Comb.Depth(); got != 12 {
		t.Errorf("depth = %d, want 12", got)
	}
	if got := len(s.PrimaryOutputs()); got < 5 {
		t.Errorf("POs = %d, want >= 5", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Name: "x", Inputs: 5, Outputs: 2, FFs: 0, Gates: 50, Depth: 5}); err == nil {
		t.Error("want error for zero FFs")
	}
}

func TestISCAS89Like(t *testing.T) {
	for _, name := range []string{"s27", "s344", "s1196"} {
		s, err := ISCAS89Like(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec := iscas89Profiles[name]
		if len(s.PrimaryInputs()) != spec.Inputs || s.NumFFs() != spec.FFs ||
			s.Comb.NumLogicGates() != spec.Gates {
			t.Errorf("%s: %v does not match profile %+v", name, s, spec)
		}
	}
	if _, err := ISCAS89Like("s9999"); err == nil {
		t.Error("want error for unknown profile")
	}
	if names := Names89(); len(names) != 6 || names[0] != "s27" {
		t.Errorf("Names89 = %v", names)
	}
}

func TestOrderScanChainImproves(t *testing.T) {
	s, err := ISCAS89Like("s5378")
	if err != nil {
		t.Fatal(err)
	}
	opt, decl := OrderScanChain(s, 6)
	if len(opt.Order) != s.NumFFs() {
		t.Fatalf("order covers %d of %d FFs", len(opt.Order), s.NumFFs())
	}
	seen := map[int]bool{}
	for _, i := range opt.Order {
		if seen[i] {
			t.Fatal("FF visited twice")
		}
		seen[i] = true
	}
	if opt.Length > decl.Length {
		t.Errorf("nearest-neighbour order (%d) worse than declaration order (%d)",
			opt.Length, decl.Length)
	}
	t.Logf("scan chain wiring: declared %d -> ordered %d (%.0f%%)",
		decl.Length, opt.Length, 100*float64(opt.Length)/float64(decl.Length))
}

func TestOrderScanChainEmpty(t *testing.T) {
	s, err := ReadBench(strings.NewReader(s27Bench), "x")
	if err != nil {
		t.Fatal(err)
	}
	s.FFs = nil
	opt, decl := OrderScanChain(s, 4)
	if len(opt.Order) != 0 || decl.Length != 0 {
		t.Error("empty chain should order trivially")
	}
}

func TestScanTestTime(t *testing.T) {
	total, err := ScanTestTime(100, 16, 10e-9, 20e-9, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (16*10e-9 + 20e-9 + 5e-9)
	if diff := total - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("ScanTestTime = %g, want %g", total, want)
	}
	// Scan dominates: the same vector count without scan is much faster.
	noScan, err := ScanTestTime(100, 0, 10e-9, 20e-9, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if noScan >= total {
		t.Error("scan loading must add time")
	}
	if _, err := ScanTestTime(0, 16, 1, 1, 1); err == nil {
		t.Error("want error for zero vectors")
	}
	if _, err := ScanTestTime(1, 16, 0, 1, 1); err == nil {
		t.Error("want error for zero clock")
	}
}

// The point of full scan: the whole IDDQ synthesis flow applies to the
// combinational core unchanged.
func TestSynthesizeSequentialCore(t *testing.T) {
	s, err := ISCAS89Like("s641")
	if err != nil {
		t.Fatal(err)
	}
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = 20
	res, err := core.Synthesize(s.Comb, core.Options{Evolution: &eprm})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partition.Feasible() {
		t.Error("sequential core partition infeasible")
	}
	// Fold the scan economics into the test time.
	total, err := ScanTestTime(100, s.NumFFs(), 10e-9, res.Costs.DBIc, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Error("degenerate scan test time")
	}
	t.Logf("%v: %d modules, 100 scan vectors in %.3g s", s, res.Partition.NumModules(), total)
}
