package obs

import (
	"math"
	"testing"
)

func TestHistogramSnapshotQuantile(t *testing.T) {
	// A hand-built 3-bucket snapshot: (0,1]=10, (1,2]=10, (2,4]=0,
	// overflow=0 — 20 observations, uniform within each bucket under the
	// linear-interpolation model.
	uniform := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []uint64{10, 10, 0, 0},
		Count:  20,
	}
	overflowy := HistogramSnapshot{
		Bounds: []float64{1, 2},
		Counts: []uint64{0, 0, 5}, // everything above the last bound
		Count:  5,
	}
	skewed := HistogramSnapshot{
		Bounds: []float64{0.001, 0.01, 0.1, 1},
		Counts: []uint64{90, 0, 0, 10, 0},
		Count:  100,
	}
	cases := []struct {
		name string
		hs   HistogramSnapshot
		q    float64
		want float64
	}{
		{"empty", HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}, 0.5, 0},
		{"median splits the two buckets", uniform, 0.5, 1.0},
		{"q=0 clamps to the first bucket edge", uniform, 0, 0},
		{"q=1 is the top of the last occupied bucket", uniform, 1, 2.0},
		{"p25 interpolates inside bucket 1", uniform, 0.25, 0.5},
		{"p75 interpolates inside bucket 2", uniform, 0.75, 1.5},
		{"negative q clamps", uniform, -3, 0},
		{"q above 1 clamps", uniform, 7, 2.0},
		{"overflow bucket clamps to last bound", overflowy, 0.99, 2},
		{"skewed p50 inside the first bucket", skewed, 0.5, 0.001 * 50 / 90},
		{"skewed p95 lands in the tail bucket", skewed, 0.95, 0.1 + 0.9*0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.hs.Quantile(tc.q)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestQuantileAgainstObservations(t *testing.T) {
	// End to end through a real histogram: 1000 observations 1ms..1000ms,
	// the estimate must land within one bucket of the true quantile.
	r := NewRegistry()
	h := r.Histogram("lat", ExpBuckets(1e-3, 1.5, 24))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	hs := r.Snapshot().Histograms["lat"]
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := hs.Quantile(q)
		truth := q // observations are uniform on (0,1]
		if got < truth/1.6 || got > truth*1.6 {
			t.Errorf("Quantile(%v) = %v, want within a 1.5x bucket of %v", q, got, truth)
		}
	}
}

func TestComputeQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("busy", []float64{1, 2}).Observe(1.5)
	r.Histogram("idle", []float64{1, 2}) // no observations
	s := r.Snapshot()
	if s.Quantiles != nil {
		t.Fatalf("Snapshot must not derive quantiles (checkpoint byte-stability): %v", s.Quantiles)
	}
	s.ComputeQuantiles()
	if _, ok := s.Quantiles["busy"]; !ok {
		t.Fatalf("ComputeQuantiles skipped a non-empty histogram: %v", s.Quantiles)
	}
	if _, ok := s.Quantiles["idle"]; ok {
		t.Errorf("ComputeQuantiles summarized an empty histogram")
	}
	qs := s.Quantiles["busy"]
	if qs.P50 <= 1 || qs.P50 > 2 || qs.P99 <= 1 || qs.P99 > 2 {
		t.Errorf("quantiles of a single 1.5 observation = %+v, want within (1,2]", qs)
	}
	var nilSnap *MetricsSnapshot
	nilSnap.ComputeQuantiles() // must not panic
}
