package obs

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenObs() *Obs {
	o := New("r-golden", nil, nil)
	o.Counter("evolution.evaluations").Add(120)
	o.Counter("evolution.generations").Add(15)
	o.Gauge("evolution.best_cost").Set(42.5)
	h := o.Histogram("evolution.eval.seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(3)
	o.SetStatus(map[string]any{"generation": 15, "best_cost": 42.5})
	return o
}

// TestRunSnapshotGolden pins the on-disk JSON format. Regenerate with:
//
//	go test ./internal/obs -run TestRunSnapshotGolden -update
func TestRunSnapshotGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := NewRunSnapshot(goldenObs(), "c17").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "run_snapshot.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if string(got) != string(want) {
		t.Errorf("snapshot JSON drifted from golden:\n got: %s\nwant: %s", got, want)
	}
}

func TestRunSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := NewRunSnapshot(goldenObs(), "c17").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := LoadRunSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Run != "r-golden" || s.Circuit != "c17" {
		t.Errorf("identity = %q/%q", s.Run, s.Circuit)
	}
	if s.Metrics.Counters["evolution.evaluations"] != 120 {
		t.Errorf("counters = %v", s.Metrics.Counters)
	}
	hs := s.Metrics.Histograms["evolution.eval.seconds"]
	if want := []uint64{1, 0, 1, 1}; !reflect.DeepEqual(hs.Counts, want) {
		t.Errorf("histogram counts = %v, want %v", hs.Counts, want)
	}
}

func TestLoadRunSnapshotRejectsForeign(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"corrupt.json": `{"format": "iddqsyn-run-snapshot", "version": 1`,
		"format.json":  `{"format": "something-else", "version": 1}`,
		"version.json": `{"format": "iddqsyn-run-snapshot", "version": 999}`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadRunSnapshot(p); err == nil {
			t.Errorf("%s: want a load error", name)
		}
	}
	if _, err := LoadRunSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want a load error")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	if err := NewRunSnapshot(goldenObs(), "c17").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second snapshot: the temp file must be gone and
	// the target valid.
	if err := NewRunSnapshot(goldenObs(), "c17").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if _, err := LoadRunSnapshot(path); err != nil {
		t.Errorf("overwritten snapshot unreadable: %v", err)
	}
}

func TestObsNilSafety(t *testing.T) {
	var o *Obs
	if o.Run() != "" || o.Registry() != nil || o.Log() != nil || o.Status() != nil {
		t.Error("nil Obs accessors must return zero values")
	}
	o.SetStatus("x") // no-op, must not panic
	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Histogram("h", nil).Observe(1)
	s := NewRunSnapshot(o, "c17")
	if s.Run != "" || s.Metrics == nil {
		t.Errorf("snapshot of nil Obs = %+v", s)
	}
}

func TestNewRunIDUnique(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Errorf("consecutive run IDs collide: %s", a)
	}
	if !strings.HasPrefix(a, "r-") {
		t.Errorf("run ID %q missing r- prefix", a)
	}
}

func TestContextCarriage(t *testing.T) {
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) must be nil")
	}
	base := context.Background()
	if FromContext(base) != nil {
		t.Error("plain context must carry no Obs")
	}
	o := New("r-ctx", nil, nil)
	if FromContext(NewContext(base, o)) != o {
		t.Error("context must carry the Obs")
	}
	if NewContext(base, nil) != base {
		t.Error("NewContext with nil Obs must return the context unchanged")
	}
}

// The degraded flag is sticky, nil-safe, and lands in the snapshot — the
// contract the core degradation path relies on to make fallback results
// distinguishable from converged ones.
func TestDegradedFlagInSnapshot(t *testing.T) {
	var nilObs *Obs
	nilObs.SetDegraded("must not panic")
	if d, _ := nilObs.Degraded(); d {
		t.Error("nil Obs reports degraded")
	}

	o := New("r-degraded", nil, nil)
	if d, _ := o.Degraded(); d {
		t.Error("fresh Obs already degraded")
	}
	s := NewRunSnapshot(o, "c17")
	if s.Degraded || s.DegradedReason != "" {
		t.Error("snapshot of a healthy run carries a degraded flag")
	}

	o.SetDegraded("optimizer failed 3 times: injected fault")
	d, reason := o.Degraded()
	if !d || reason != "optimizer failed 3 times: injected fault" {
		t.Errorf("Degraded() = %v, %q", d, reason)
	}
	path := filepath.Join(t.TempDir(), "degraded.json")
	if err := NewRunSnapshot(o, "c17").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRunSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Degraded || loaded.DegradedReason != reason {
		t.Errorf("loaded snapshot degraded = %v/%q, want true/%q",
			loaded.Degraded, loaded.DegradedReason, reason)
	}
}
