package obs

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	// Run with -race in make check: the counter must be a single atomic.
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("Counter = %d after %d concurrent Incs, want %d", got, workers*each, workers*each)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cost")
	if g.Value() != 0 {
		t.Errorf("unset gauge = %v, want 0", g.Value())
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Errorf("gauge = %v, want -2.5", g.Value())
	}
	if r.Gauge("cost") != g {
		t.Error("Gauge must return the same handle for the same name")
	}
}

// TestHistogramBucketBoundaries pins the bucket semantics: bucket i
// counts v <= bounds[i] (and > bounds[i-1]); the implicit last bucket
// counts everything above the final bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{
		0.5, 1, // both <= 1: bucket 0
		1.0001, 10, // bucket 1
		99.9,          // bucket 2
		100.0001, 1e9, // overflow bucket
	} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	wantBounds := []float64{1, 10, 100}
	if !reflect.DeepEqual(s.Bounds, wantBounds) {
		t.Errorf("Bounds = %v, want %v", s.Bounds, wantBounds)
	}
	wantCounts := []uint64{2, 2, 1, 2}
	if !reflect.DeepEqual(s.Counts, wantCounts) {
		t.Errorf("Counts = %v, want %v (bucket i counts v <= bounds[i])", s.Counts, wantCounts)
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	wantSum := 0.5 + 1 + 1.0001 + 10 + 99.9 + 100.0001 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Errorf("Count = %d, want %d", h.Count(), workers*each)
	}
	if want := 1.5 * workers * each; math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v (CAS loop must not lose updates)", h.Sum(), want)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil) // default latency buckets
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Sum() < 1e-3 || h.Sum() > 10 {
		t.Errorf("Sum = %v seconds, want roughly 1ms", h.Sum())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	if want := []float64{1, 10, 100}; !reflect.DeepEqual(got, want) {
		t.Errorf("ExpBuckets(1,10,3) = %v, want %v", got, want)
	}
	// Out-of-domain arguments are clamped, never a panic: metrics
	// plumbing must not take a run down.
	for _, b := range [][]float64{
		ExpBuckets(-1, 0.5, 0),
		ExpBuckets(0, 1, -3),
	} {
		if len(b) == 0 {
			t.Error("clamped ExpBuckets must still return at least one bound")
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Errorf("clamped bounds not ascending: %v", b)
			}
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same counter name must return the same handle")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{5, 6, 7}) // later bounds ignored
	if h1 != h2 {
		t.Error("same histogram name must return the same handle")
	}
	h1.Observe(1.5)
	if got := r.Snapshot().Histograms["h"].Bounds; !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Errorf("first-creation bounds must win, got %v", got)
	}
}

func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	// Every call on the nil registry and its nil metrics must be a no-op.
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	r.Histogram("x", nil).ObserveSince(time.Now())
	r.Restore(&MetricsSnapshot{Counters: map[string]uint64{"x": 1}})
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Histogram("x", nil).Count() != 0 {
		t.Error("nil metrics must read as zero")
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot must be empty, got %+v", s)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("evals").Add(42)
	r.Gauge("best").Set(3.25)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	snap := r.Snapshot()
	fresh := NewRegistry()
	fresh.Restore(snap)

	// Counters and histograms must continue monotonically after restore.
	fresh.Counter("evals").Inc()
	fresh.Histogram("lat", []float64{1, 2}).Observe(0.25)
	if got := fresh.Counter("evals").Value(); got != 43 {
		t.Errorf("restored counter = %d, want 43", got)
	}
	if got := fresh.Gauge("best").Value(); got != 3.25 {
		t.Errorf("restored gauge = %v, want 3.25", got)
	}
	hs := fresh.Snapshot().Histograms["lat"]
	if hs.Count != 4 {
		t.Errorf("restored histogram Count = %d, want 4", hs.Count)
	}
	if want := []uint64{2, 1, 1}; !reflect.DeepEqual(hs.Counts, want) {
		t.Errorf("restored histogram Counts = %v, want %v", hs.Counts, want)
	}
	if want := 0.5 + 1.5 + 99 + 0.25; math.Abs(hs.Sum-want) > 1e-9 {
		t.Errorf("restored histogram Sum = %v, want %v", hs.Sum, want)
	}
}

func TestRestoreForeignBucketLayout(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 3})
	h.Observe(1)
	// A snapshot with a different bucket count must not corrupt the live
	// histogram.
	r.Restore(&MetricsSnapshot{Histograms: map[string]HistogramSnapshot{
		"lat": {Bounds: []float64{5}, Counts: []uint64{7, 7}, Count: 14, Sum: 70},
	}})
	if h.Count() != 1 {
		t.Errorf("foreign layout must leave the live histogram alone, Count = %d", h.Count())
	}
}
