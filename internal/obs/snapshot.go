// Per-run snapshot files: the recorded evidence a finished (or
// checkpointed) run leaves behind. A RunSnapshot bundles the run ID, the
// final run status (e.g. the optimizer's generation/best-cost view) and
// the full metrics snapshot; the CLIs write one with -metrics, and
// convergence plots or regression checks read it back instead of
// re-running the optimizer. Writes are atomic (temp file + fsync +
// rename), mirroring the checkpoint protocol.

package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"iddqsyn/internal/fsx"
)

// SnapshotFormat and SnapshotVersion identify the snapshot file format.
const (
	SnapshotFormat  = "iddqsyn-run-snapshot"
	SnapshotVersion = 1
)

// RunSnapshot is one run's persisted telemetry.
type RunSnapshot struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	Run     string `json:"run"`
	Circuit string `json:"circuit,omitempty"`

	// Status is the run's final status value (whatever the optimizer last
	// published via Obs.SetStatus — generation, best cost, history, ...).
	Status any `json:"status,omitempty"`

	// Degraded records that the run fell back to a degraded mode (see
	// Obs.SetDegraded) and why — the evidence that a result came from the
	// fallback path rather than a converged optimization.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	Metrics *MetricsSnapshot `json:"metrics"`

	// Traces embeds the tracer's retained slowest traces when causal
	// tracing was armed for the run (absent otherwise, keeping untraced
	// snapshots byte-identical to earlier versions).
	Traces *TraceSnapshot `json:"traces,omitempty"`
}

// NewRunSnapshot assembles a snapshot of o's current state.
func NewRunSnapshot(o *Obs, circuit string) *RunSnapshot {
	degraded, reason := o.Degraded()
	return &RunSnapshot{
		Format:         SnapshotFormat,
		Version:        SnapshotVersion,
		Run:            o.Run(),
		Circuit:        circuit,
		Status:         o.Status(),
		Degraded:       degraded,
		DegradedReason: reason,
		Metrics:        o.Registry().Snapshot(),
		Traces:         traceSnapshotOrNil(o.Tracer()),
	}
}

// traceSnapshotOrNil keeps untraced runs' snapshots free of an empty
// "traces" stanza.
func traceSnapshotOrNil(t *Tracer) *TraceSnapshot {
	if t == nil {
		return nil
	}
	return t.Snapshot()
}

// WriteFile persists the snapshot through the crash-safe fsx protocol
// (temp file, fsync, rename, directory fsync) — a crash never leaves a
// truncated or empty snapshot visible.
func (s *RunSnapshot) WriteFile(path string) error {
	return s.WriteFileFS(fsx.OS{}, path, nil)
}

// WriteFileFS is WriteFile over an explicit filesystem and retry policy
// (nil policy = fsx defaults). Chaos tests pass a fault-injecting FS to
// exercise the snapshot's durability claims.
func (s *RunSnapshot) WriteFileFS(fs fsx.FS, path string, pol *fsx.RetryPolicy) error {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshal run snapshot: %w", err)
	}
	if err := fsx.WriteAtomicRetry(fs, path, data, pol); err != nil {
		return fmt.Errorf("obs: write run snapshot: %w", err)
	}
	return nil
}

// LoadRunSnapshot reads and validates a snapshot file.
func LoadRunSnapshot(path string) (*RunSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: load run snapshot: %w", err)
	}
	s := &RunSnapshot{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("obs: run snapshot %s is corrupted: %w", path, err)
	}
	if s.Format != SnapshotFormat {
		return nil, fmt.Errorf("obs: %s is not a run snapshot (format %q, want %q)",
			path, s.Format, SnapshotFormat)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("obs: run snapshot %s: version %d not supported (want %d)",
			path, s.Version, SnapshotVersion)
	}
	return s, nil
}
