// Package obs is the observability substrate of iddqsyn: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket histograms), a
// structured leveled event logger with per-run IDs and nested timing
// spans, a live introspection HTTP server (expvar, pprof, /runz), and
// per-run metric snapshots that persist next to optimizer checkpoints.
//
// The package is stdlib-only and deliberately nil-tolerant: every method
// on *Obs, *Logger, *Registry, *Counter, *Gauge, *Histogram and *Span is
// a no-op on a nil receiver, so instrumented code reads identically
// whether a run is observed or not — no `if obs != nil` at call sites,
// and the unobserved hot path costs one pointer comparison.
//
// An *Obs travels either explicitly (core.Options.Obs, evolution.Control
// .Obs) or on the context (NewContext/FromContext), which lets the
// experiment drivers thread telemetry through existing call chains
// without signature churn. The context carriage holds observability
// plumbing only — never request-scoped business state.
package obs

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Obs bundles everything one observed run needs: a metrics registry, a
// structured logger stamped with the run ID, and an atomically published
// status value that the /runz introspection endpoint serves live.
type Obs struct {
	run      string
	reg      *Registry
	log      *Logger
	status   atomic.Value           // latest run status, any JSON-marshalable value
	degraded atomic.Pointer[string] // non-nil once the run entered degraded mode; value = reason
	tracer   atomic.Pointer[Tracer] // nil until SetTracer arms causal tracing
}

// New assembles an Obs for one run. A nil registry gets a fresh one; a
// nil logger stays nil (logging methods are no-ops). The run ID is
// stamped onto every log record.
func New(run string, reg *Registry, log *Logger) *Obs {
	if reg == nil {
		reg = NewRegistry()
	}
	o := &Obs{run: run, reg: reg, log: log.WithRun(run)}
	return o
}

// Run returns the run ID ("" on a nil Obs).
func (o *Obs) Run() string {
	if o == nil {
		return ""
	}
	return o.run
}

// Registry returns the metrics registry (nil on a nil Obs; the registry's
// methods tolerate that).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Log returns the structured logger (nil on a nil Obs; the logger's
// methods tolerate that).
func (o *Obs) Log() *Logger {
	if o == nil {
		return nil
	}
	return o.log
}

// Counter returns the named counter from the run's registry.
func (o *Obs) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge returns the named gauge from the run's registry.
func (o *Obs) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram returns the named histogram from the run's registry.
func (o *Obs) Histogram(name string, bounds []float64) *Histogram {
	return o.Registry().Histogram(name, bounds)
}

// SetStatus atomically publishes the run's live status — the value /runz
// serves. Callers pass a small JSON-marshalable snapshot (e.g. the
// optimizer's current generation and best cost) once per update point.
func (o *Obs) SetStatus(v any) {
	if o == nil || v == nil {
		return
	}
	o.status.Store(v)
}

// Status returns the last value passed to SetStatus (nil if none).
func (o *Obs) Status() any {
	if o == nil {
		return nil
	}
	return o.status.Load()
}

// SetDegraded marks the run as having fallen back to a degraded mode
// (e.g. greedy standard partitioning after repeated optimizer failures),
// recording why. The flag is sticky for the run's lifetime and lands in
// the run snapshot, so a degraded result can never masquerade as a fully
// optimized one.
func (o *Obs) SetDegraded(reason string) {
	if o == nil {
		return
	}
	o.degraded.Store(&reason)
}

// Degraded reports whether SetDegraded was called, and the recorded
// reason. Nil-safe.
func (o *Obs) Degraded() (bool, string) {
	if o == nil {
		return false, ""
	}
	if r := o.degraded.Load(); r != nil {
		return true, *r
	}
	return false, ""
}

// SetTracer arms causal tracing for the run. Tracing is off by default —
// without a tracer every StartRoot/StartChild returns nil and the
// instrumented path costs a pointer comparison. Nil-safe.
func (o *Obs) SetTracer(t *Tracer) {
	if o == nil {
		return
	}
	o.tracer.Store(t)
}

// Tracer returns the run's tracer, or nil when tracing is off. The nil
// result is safe to use directly — every Tracer method tolerates it.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer.Load()
}

// runSeq disambiguates run IDs minted within the same nanosecond.
var runSeq atomic.Uint64

// NewRunID mints a unique, sortable run identifier from the wall clock,
// the process ID and a process-local sequence number. No randomness is
// involved (the norandglobal lint bans ambient rand), so IDs are
// reproducible in shape: r-<utc timestamp>-<pid>-<seq>.
func NewRunID() string {
	return fmt.Sprintf("r-%s-%d-%d",
		time.Now().UTC().Format("20060102T150405"), os.Getpid(), runSeq.Add(1))
}

// ctxKey is the private context key for the Obs carriage.
type ctxKey struct{}

// NewContext returns a context carrying o, for call chains that already
// thread a context but not an explicit Obs (the experiment drivers).
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext returns the Obs carried by ctx, or nil. The nil result is
// safe to use directly — every obs method tolerates it.
func FromContext(ctx context.Context) *Obs {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(ctxKey{}).(*Obs)
	return o
}
