package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBroadcasterDeliversInOrder(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(8)
	defer cancel()
	for i := 0; i < 5; i++ {
		b.Publish(i)
	}
	for want := 0; want < 5; want++ {
		got := <-ch
		if got != want {
			t.Fatalf("event %d: got %v", want, got)
		}
	}
}

func TestBroadcasterPrimesWithLast(t *testing.T) {
	b := NewBroadcaster()
	b.Publish("state-1")
	b.Publish("state-2")
	ch, cancel := b.Subscribe(4)
	defer cancel()
	if got := <-ch; got != "state-2" {
		t.Fatalf("new subscriber primed with %v, want state-2", got)
	}
	if b.Last() != "state-2" {
		t.Fatalf("Last = %v", b.Last())
	}
}

func TestBroadcasterDropsOldestWhenFull(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ {
		b.Publish(i)
	}
	// The buffer holds the two freshest events; the older eight dropped.
	if got := <-ch; got != 8 {
		t.Fatalf("first buffered event = %v, want 8", got)
	}
	if got := <-ch; got != 9 {
		t.Fatalf("second buffered event = %v, want 9", got)
	}
}

func TestBroadcasterSlowConsumerCounted(t *testing.T) {
	// A subscriber that never reads must neither block the publisher nor
	// lose events silently: the drop counter accounts for every eviction
	// and the subscriber still converges on the freshest events.
	b := NewBroadcaster()
	r := NewRegistry()
	dropped := r.Counter("obs.sse.dropped")
	b.SetDropCounter(dropped)

	ch, cancel := b.Subscribe(2)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Publish(i)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}
	// 100 events into a 2-slot buffer the consumer never drained: 98 lost.
	if got := dropped.Value(); got != 98 {
		t.Fatalf("obs.sse.dropped = %d, want 98", got)
	}
	if got := <-ch; got != 98 {
		t.Fatalf("first buffered event = %v, want 98 (freshest two retained)", got)
	}
	if got := <-ch; got != 99 {
		t.Fatalf("second buffered event = %v, want 99", got)
	}
	// Nil wiring stays a no-op on both sides.
	var nilB *Broadcaster
	nilB.SetDropCounter(dropped)
	b.SetDropCounter(nil)
	b.Publish("x")
	b.Publish("y")
	b.Publish("z") // evicts with no counter attached: must not panic
}

func TestBroadcasterCloseEndsSubscribers(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	b.Publish("final")
	b.Close()
	if got, ok := <-ch; !ok || got != "final" {
		t.Fatalf("buffered event after close: %v %v", got, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after Close")
	}
	// Post-close operations are inert.
	b.Publish("late")
	late, cancel2 := b.Subscribe(1)
	defer cancel2()
	if got, ok := <-late; ok && got != "final" {
		t.Fatalf("post-close subscriber got %v", got)
	}
}

func TestBroadcasterCancelIsIdempotent(t *testing.T) {
	b := NewBroadcaster()
	_, cancel := b.Subscribe(1)
	cancel()
	cancel() // must not panic (double close)
	b.Publish("after-cancel")
}

func TestBroadcasterNilSafe(t *testing.T) {
	var b *Broadcaster
	b.Publish("x")
	b.Close()
	if b.Last() != nil {
		t.Fatal("nil Last")
	}
	ch, cancel := b.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil broadcaster subscription must be closed")
	}
}

func TestBroadcasterConcurrentPublishSubscribe(t *testing.T) {
	b := NewBroadcaster()
	var pubs, subs sync.WaitGroup
	for w := 0; w < 4; w++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 200; i++ {
				b.Publish(i)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			ch, cancel := b.Subscribe(4)
			defer cancel()
			for range ch { // drains until Close
			}
		}()
	}
	pubs.Wait()
	b.Close()
	subs.Wait()
}
