package obs

import (
	"sync"
	"testing"
)

func TestBroadcasterDeliversInOrder(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(8)
	defer cancel()
	for i := 0; i < 5; i++ {
		b.Publish(i)
	}
	for want := 0; want < 5; want++ {
		got := <-ch
		if got != want {
			t.Fatalf("event %d: got %v", want, got)
		}
	}
}

func TestBroadcasterPrimesWithLast(t *testing.T) {
	b := NewBroadcaster()
	b.Publish("state-1")
	b.Publish("state-2")
	ch, cancel := b.Subscribe(4)
	defer cancel()
	if got := <-ch; got != "state-2" {
		t.Fatalf("new subscriber primed with %v, want state-2", got)
	}
	if b.Last() != "state-2" {
		t.Fatalf("Last = %v", b.Last())
	}
}

func TestBroadcasterDropsOldestWhenFull(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ {
		b.Publish(i)
	}
	// The buffer holds the two freshest events; the older eight dropped.
	if got := <-ch; got != 8 {
		t.Fatalf("first buffered event = %v, want 8", got)
	}
	if got := <-ch; got != 9 {
		t.Fatalf("second buffered event = %v, want 9", got)
	}
}

func TestBroadcasterCloseEndsSubscribers(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	b.Publish("final")
	b.Close()
	if got, ok := <-ch; !ok || got != "final" {
		t.Fatalf("buffered event after close: %v %v", got, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after Close")
	}
	// Post-close operations are inert.
	b.Publish("late")
	late, cancel2 := b.Subscribe(1)
	defer cancel2()
	if got, ok := <-late; ok && got != "final" {
		t.Fatalf("post-close subscriber got %v", got)
	}
}

func TestBroadcasterCancelIsIdempotent(t *testing.T) {
	b := NewBroadcaster()
	_, cancel := b.Subscribe(1)
	cancel()
	cancel() // must not panic (double close)
	b.Publish("after-cancel")
}

func TestBroadcasterNilSafe(t *testing.T) {
	var b *Broadcaster
	b.Publish("x")
	b.Close()
	if b.Last() != nil {
		t.Fatal("nil Last")
	}
	ch, cancel := b.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil broadcaster subscription must be closed")
	}
}

func TestBroadcasterConcurrentPublishSubscribe(t *testing.T) {
	b := NewBroadcaster()
	var pubs, subs sync.WaitGroup
	for w := 0; w < 4; w++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 200; i++ {
				b.Publish(i)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			ch, cancel := b.Subscribe(4)
			defer cancel()
			for range ch { // drains until Close
			}
		}()
	}
	pubs.Wait()
	b.Close()
	subs.Wait()
}
