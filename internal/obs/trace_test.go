package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerNilSafety(t *testing.T) {
	// The whole point of the nil-tolerance contract: instrumented code
	// must run untraced with no branches at call sites.
	var tr *Tracer
	sp := tr.StartRoot("root")
	if sp != nil {
		t.Fatalf("nil Tracer.StartRoot = %v, want nil", sp)
	}
	if c := sp.StartChild("child"); c != nil {
		t.Fatalf("nil TraceSpan.StartChild = %v, want nil", c)
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("nil TraceSpan.End = %v, want 0", d)
	}
	if id := sp.Trace(); id != 0 {
		t.Fatalf("nil TraceSpan.Trace = %d, want 0", id)
	}
	snap := tr.Snapshot()
	if snap == nil || snap.CompletedSpans != 0 {
		t.Fatalf("nil Tracer.Snapshot = %+v, want empty snapshot", snap)
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("SpanFromContext after nil ContextWithSpan = %v, want nil", got)
	}
	ctx2, child := StartTraceSpan(ctx, "phase")
	if child != nil || ctx2 != ctx {
		t.Fatalf("StartTraceSpan without a span = (%v, %v), want unchanged ctx and nil", ctx2, child)
	}
}

func TestTraceParentLinks(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("serve.job")
	ctx := ContextWithSpan(context.Background(), root)

	ctx, admit := StartTraceSpan(ctx, "serve.admit")
	admit.End()
	_, attempt := StartTraceSpan(ctx, "serve.attempt")
	attempt.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Slowest) != 1 {
		t.Fatalf("retained traces = %d, want 1", len(snap.Slowest))
	}
	rec := snap.Slowest[0]
	if rec.Root != "serve.job" || rec.Trace != root.Trace() {
		t.Fatalf("retained trace = %+v, want root serve.job trace %d", rec, root.Trace())
	}
	byName := map[string]SpanRecord{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
	}
	if len(byName) != 3 {
		t.Fatalf("spans = %v, want serve.job, serve.admit, serve.attempt", rec.Spans)
	}
	if byName["serve.admit"].Parent != byName["serve.job"].Span {
		t.Errorf("serve.admit parent = %d, want root span %d",
			byName["serve.admit"].Parent, byName["serve.job"].Span)
	}
	if byName["serve.attempt"].Parent != byName["serve.admit"].Span {
		t.Errorf("serve.attempt parent = %d, want serve.admit span %d (ctx carried the admit span)",
			byName["serve.attempt"].Parent, byName["serve.admit"].Span)
	}
	for _, sp := range rec.Spans {
		if sp.Trace != root.Trace() {
			t.Errorf("span %s trace = %d, want %d", sp.Name, sp.Trace, root.Trace())
		}
	}
}

func TestTraceEndIdempotent(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("job")
	root.End()
	root.End() // defensive double-End must not double-record
	snap := tr.Snapshot()
	if snap.CompletedSpans != 1 {
		t.Fatalf("completed spans after double End = %d, want 1", snap.CompletedSpans)
	}
	if len(snap.Slowest) != 1 {
		t.Fatalf("retained traces after double End = %d, want 1", len(snap.Slowest))
	}
}

func TestTailSamplingKeepsSlowest(t *testing.T) {
	tr := NewTracer(TracerConfig{Slowest: 2})
	// Durations are synthesized by back-dating span starts, so the test
	// does not depend on real sleep timing.
	durations := []time.Duration{
		5 * time.Millisecond, 50 * time.Millisecond, time.Millisecond,
		20 * time.Millisecond, 9 * time.Millisecond,
	}
	for _, d := range durations {
		sp := tr.StartRoot("job")
		sp.start = time.Now().Add(-d)
		sp.End()
	}
	snap := tr.Snapshot()
	if len(snap.Slowest) != 2 {
		t.Fatalf("retained traces = %d, want K=2", len(snap.Slowest))
	}
	if snap.Slowest[0].Dur < snap.Slowest[1].Dur {
		t.Errorf("retained traces not slowest-first: %d then %d ns",
			snap.Slowest[0].Dur, snap.Slowest[1].Dur)
	}
	// The two slowest offered were 50ms and 20ms.
	if got := time.Duration(snap.Slowest[0].Dur); got < 50*time.Millisecond {
		t.Errorf("slowest retained = %v, want >= 50ms", got)
	}
	if got := time.Duration(snap.Slowest[1].Dur); got < 20*time.Millisecond || got >= 50*time.Millisecond {
		t.Errorf("second retained = %v, want the 20ms trace", got)
	}
}

func TestTraceRingBounded(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 8, Slowest: 1})
	for i := 0; i < 50; i++ {
		tr.StartRoot("job").End()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 8 {
		t.Fatalf("recent spans = %d, want ring size 8", len(snap.Recent))
	}
	if snap.CompletedSpans != 50 {
		t.Fatalf("completed spans = %d, want 50", snap.CompletedSpans)
	}
	// The ring holds the newest 8 — strictly increasing span IDs.
	for i := 1; i < len(snap.Recent); i++ {
		if snap.Recent[i].Span <= snap.Recent[i-1].Span {
			t.Fatalf("ring not oldest-first: %v", snap.Recent)
		}
	}
}

func TestTraceActiveEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxActiveTraces: 2})
	a := tr.StartRoot("a")
	b := tr.StartRoot("b")
	c := tr.StartRoot("c") // evicts a
	snap := tr.Snapshot()
	if snap.ActiveTraces != 2 || snap.EvictedTraces != 1 {
		t.Fatalf("active=%d evicted=%d, want 2 active and 1 evicted",
			snap.ActiveTraces, snap.EvictedTraces)
	}
	a.End() // straggler: ring only
	b.End()
	c.End()
	snap = tr.Snapshot()
	if snap.OrphanedSpans != 1 {
		t.Errorf("orphaned spans = %d, want 1 (evicted trace's late root)", snap.OrphanedSpans)
	}
	if len(snap.Slowest) > 2 {
		t.Errorf("retained %d traces, evicted trace must not be retained whole", len(snap.Slowest))
	}
}

func TestTraceSpanCapPerTrace(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpansPerTrace: 3})
	root := tr.StartRoot("job")
	for i := 0; i < 10; i++ {
		root.StartChild("gen").End()
	}
	root.End()
	snap := tr.Snapshot()
	if len(snap.Slowest) != 1 {
		t.Fatalf("retained traces = %d, want 1", len(snap.Slowest))
	}
	rec := snap.Slowest[0]
	if len(rec.Spans) != 3 {
		t.Errorf("stored spans = %d, want cap 3", len(rec.Spans))
	}
	if rec.DroppedSpans != 8 { // 10 children + root = 11 ends, 3 stored
		t.Errorf("dropped spans = %d, want 8", rec.DroppedSpans)
	}
}

func TestTraceCrossGoroutineEnd(t *testing.T) {
	// The queue-wait span starts on the HTTP goroutine and ends on the
	// worker that claims the job; run with -race in make check.
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("job")
	wait := root.StartChild("queue.wait")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wait.End()
	}()
	wg.Wait()
	root.End()
	snap := tr.Snapshot()
	if len(snap.Slowest) != 1 || len(snap.Slowest[0].Spans) != 2 {
		t.Fatalf("snapshot after cross-goroutine End = %+v, want 1 trace with 2 spans", snap)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 64, Slowest: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartRoot("job")
				root.StartChild("phase").End()
				root.End()
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.CompletedSpans != 8*50*2 {
		t.Fatalf("completed spans = %d, want %d", snap.CompletedSpans, 8*50*2)
	}
	if len(snap.Slowest) != 4 {
		t.Fatalf("retained traces = %d, want K=4", len(snap.Slowest))
	}
	if snap.ActiveTraces != 0 {
		t.Fatalf("active traces = %d, want 0 after all roots ended", snap.ActiveTraces)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("serve.job")
	root.StartChild("queue.wait").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  uint64  `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if !strings.Contains(ev.Name, "process_name") {
				t.Errorf("metadata event name = %q, want process_name", ev.Name)
			}
		case "X":
			complete++
			if ev.Pid != root.Trace() {
				t.Errorf("event pid = %d, want trace %d", ev.Pid, root.Trace())
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 1 || complete != 2 {
		t.Errorf("events = %d metadata + %d complete, want 1 + 2", meta, complete)
	}
}

func TestObsTracerWiring(t *testing.T) {
	o := New("run-1", nil, nil)
	if o.Tracer() != nil {
		t.Fatalf("tracing must be off by default")
	}
	tr := NewTracer(TracerConfig{})
	o.SetTracer(tr)
	if o.Tracer() != tr {
		t.Fatalf("Tracer() did not return the installed tracer")
	}
	o.Tracer().StartRoot("job").End()
	snap := NewRunSnapshot(o, "c432")
	if snap.Traces == nil || len(snap.Traces.Slowest) != 1 {
		t.Fatalf("run snapshot did not embed traces: %+v", snap.Traces)
	}
	// Untraced runs stay trace-free (snapshot bytes unchanged vs. v1).
	plain := NewRunSnapshot(New("run-2", nil, nil), "c432")
	if plain.Traces != nil {
		t.Fatalf("untraced run snapshot has traces stanza: %+v", plain.Traces)
	}
	var nilObs *Obs
	nilObs.SetTracer(tr)
	if nilObs.Tracer() != nil {
		t.Fatalf("nil Obs.Tracer() = %v, want nil", nilObs.Tracer())
	}
}
