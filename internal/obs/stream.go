// Live event streaming: a Broadcaster fans one producer's progress
// events out to any number of subscribers — the substrate of the serving
// layer's per-job SSE progress streams. Like the rest of the package it
// is nil-tolerant (every method no-ops on a nil receiver) and never
// blocks the producer: a slow subscriber loses its oldest buffered
// events, never stalls the optimizer that is publishing them.

package obs

import "sync"

// DefaultSubscriberBuffer is the per-subscriber event buffer used when
// Subscribe is called with a non-positive size.
const DefaultSubscriberBuffer = 16

// Broadcaster distributes events from one producer to many subscribers.
// Publish is non-blocking: when a subscriber's buffer is full its oldest
// event is dropped to make room, so consumers always converge on the
// latest state while a stuck consumer costs nothing.
type Broadcaster struct {
	mu      sync.Mutex
	subs    map[int]chan any
	nextID  int
	last    any
	closed  bool
	dropped *Counter // guarded by mu; incremented per event lost to a slow subscriber
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[int]chan any)}
}

// SetDropCounter wires a counter (typically obs.sse.dropped) that ticks
// once per event evicted from a slow subscriber's buffer, making
// slow-consumer loss visible in /metricz rather than silent. Nil-safe in
// both directions.
func (b *Broadcaster) SetDropCounter(c *Counter) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.dropped = c
	b.mu.Unlock()
}

// Publish delivers v to every subscriber and records it as the latest
// event (new subscribers receive it immediately). Nil-safe; publishing
// after Close is a no-op.
func (b *Broadcaster) Publish(v any) {
	if b == nil || v == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.last = v
	for _, ch := range b.subs {
		for {
			select {
			case ch <- v:
			default:
				// Buffer full: drop the oldest event and retry, so the
				// subscriber keeps the freshest view without ever
				// blocking the publisher.
				select {
				case <-ch:
					b.dropped.Inc()
				default:
				}
				continue
			}
			break
		}
	}
}

// Subscribe registers a new subscriber with a buffer of size buf
// (<= 0 selects DefaultSubscriberBuffer). The channel is primed with the
// latest published event, if any, and is closed when the broadcaster
// closes. The returned cancel function removes the subscription; it is
// idempotent and must be called to release the channel.
func (b *Broadcaster) Subscribe(buf int) (<-chan any, func()) {
	if b == nil {
		ch := make(chan any)
		close(ch)
		return ch, func() {}
	}
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan any, buf)
	if b.last != nil {
		ch <- b.last
	}
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[id]; ok {
				delete(b.subs, id)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// Last returns the most recently published event (nil if none yet).
func (b *Broadcaster) Last() any {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}

// Close ends the stream: every subscriber channel is closed (after its
// buffered events drain) and future Publish/Subscribe calls are no-ops.
// Idempotent and nil-safe.
func (b *Broadcaster) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}
