// The live introspection server: one flag (-debug-addr) turns a running
// optimization into an inspectable process. The server exposes
//
//	/            endpoint index
//	/healthz     liveness probe
//	/runz        the run's live status (run ID + the value last passed
//	             to Obs.SetStatus — generation, best cost, violations)
//	/metricz     the full metrics-registry snapshot as JSON
//	/debug/vars  expvar (memstats, cmdline, and the registry under
//	             the "iddqsyn" key)
//	/debug/pprof pprof profiles (CPU, heap, goroutine, ...)
//
// Handlers are read-only and serve point-in-time snapshots; they never
// block the optimizer (metrics reads are atomic).

package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Shared HTTP hardening defaults: every iddqsyn HTTP surface (this debug
// server and the internal/serve job service) builds its *http.Server via
// HardenedServer so the same slow-client and oversized-request limits
// apply everywhere.
const (
	// DefaultReadHeaderTimeout bounds how long a client may dribble its
	// request headers.
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultReadTimeout bounds the whole request read, body included.
	DefaultReadTimeout = time.Minute
	// DefaultWriteTimeout bounds each response write. Handlers that
	// legitimately stream for longer (SSE progress, long pprof profiles)
	// must extend their own deadline via http.NewResponseController.
	DefaultWriteTimeout = 2 * time.Minute
	// DefaultIdleTimeout reclaims idle keep-alive connections.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultMaxRequestBytes caps request bodies on surfaces that accept
	// no meaningful payload (the debug endpoints). Services that ingest
	// real payloads (netlist submission) pass their own larger limit to
	// HardenedServerMax.
	DefaultMaxRequestBytes = 1 << 20
)

// HardenedServer wraps h in an *http.Server with the shared protective
// timeouts and the default request-body cap.
func HardenedServer(h http.Handler) *http.Server {
	return HardenedServerMax(h, DefaultMaxRequestBytes)
}

// HardenedServerMax is HardenedServer with an explicit request-body cap
// (<= 0 keeps DefaultMaxRequestBytes). Bodies beyond the cap fail the
// handler's read with an http.MaxBytesError and a 413 response.
func HardenedServerMax(h http.Handler, maxBytes int64) *http.Server {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxRequestBytes
	}
	return &http.Server{
		Handler:           http.MaxBytesHandler(h, maxBytes),
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}

// expvar.Publish panics on duplicate names, so the registry hook is
// installed once per process and reads the latest-served registry
// through an atomic pointer (tests start several servers).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	if r == nil {
		return
	}
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("iddqsyn", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// Server is a running introspection HTTP server.
type Server struct {
	o    *Obs
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when Serve's goroutine exits
}

// Serve starts the introspection server on addr (e.g. ":6060" or
// "127.0.0.1:0") observing o. It returns once the listener is bound; the
// handler loop runs in a background goroutine until Close.
func Serve(addr string, o *Obs) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	s := &Server{
		o:    o,
		ln:   ln,
		srv:  HardenedServer(NewMux(o)),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			o.Log().Error("debug server failed", "addr", ln.Addr().String(), "err", err.Error())
		}
	}()
	o.Log().Info("debug server listening", "addr", ln.Addr().String())
	return s, nil
}

// NewMux builds the introspection route table for o — the handler set
// Serve exposes, also mountable inside another service's mux (the job
// service delegates its /debug/ tree here).
func NewMux(o *Obs) *http.ServeMux {
	publishExpvar(o.Registry())

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "iddqsyn introspection — run %s\n\n", o.Run())
		fmt.Fprintln(w, "/healthz      liveness")
		fmt.Fprintln(w, "/runz         live run status (JSON)")
		fmt.Fprintln(w, "/metricz      metrics snapshot with latency quantiles (JSON)")
		fmt.Fprintln(w, "/tracez       slowest retained traces (Chrome trace_event; ?format=json for raw)")
		fmt.Fprintln(w, "/debug/vars   expvar")
		fmt.Fprintln(w, "/debug/pprof  profiles")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/runz", func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, struct {
			Run    string `json:"run"`
			Status any    `json:"status"`
		}{Run: o.Run(), Status: o.Status()})
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, _ *http.Request) {
		snap := o.Registry().Snapshot()
		snap.ComputeQuantiles()
		WriteJSON(w, snap)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		ServeTracez(w, r, o.Tracer())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down gracefully, waiting for in-flight requests
// until ctx expires, then hard-closing. The error is worth checking —
// the closecheck lint flags callers that drop it.
func (s *Server) Close(ctx context.Context) error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Graceful drain failed (context expired): force the listener and
		// connections closed so the process can exit.
		if cerr := s.srv.Close(); cerr != nil && err == context.DeadlineExceeded {
			err = cerr
		}
	}
	<-s.done
	if err != nil {
		return fmt.Errorf("obs: debug server shutdown: %w", err)
	}
	return nil
}

// ServeTracez renders a tracer snapshot: Chrome trace_event JSON by
// default (load it in chrome://tracing or Perfetto), the raw
// TraceSnapshot with ?format=json. A nil tracer serves an empty
// snapshot, so the endpoint is safe to mount unconditionally.
func ServeTracez(w http.ResponseWriter, r *http.Request, t *Tracer) {
	snap := t.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		WriteJSON(w, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := snap.WriteChrome(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// WriteJSON serves v as an indented JSON response — the one encoding
// every iddqsyn HTTP endpoint uses.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
