// Causal tracing: context-propagated trace/span identity over the whole
// request path — HTTP accept, admission, per-tenant queue wait, worker
// claim, the core retry/degrade loop, per-generation evolution phases,
// result publish. Where the metrics registry answers "how often and how
// long on average", a trace answers "where did *this* request's
// milliseconds go": every TraceSpan carries its trace ID and parent link,
// completed spans land in a fixed-size ring buffer, and a tail sampler
// always retains the K slowest completed traces with their full span
// trees — the traces worth looking at are by definition the ones you
// cannot pick in advance.
//
// The design follows the package's rules: nil-tolerant everywhere (a nil
// *Tracer or *TraceSpan makes every operation a no-op, so instrumented
// code reads identically whether tracing is armed or not, and the
// disabled path costs one pointer comparison and zero allocations), and
// lock-cheap (one short mutex hold per span *end*; span start is
// allocation-only; nothing on the per-descendant optimizer hot path is
// ever traced — spans cover phases, not individual cost evaluations).
//
// Exports: Snapshot (JSON, embeddable in run snapshots) and Chrome
// trace_event JSON (chrome://tracing, Perfetto) via the /tracez debug
// endpoint.

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer sampling and bounding defaults.
const (
	// DefaultTraceRing is the completed-span ring size.
	DefaultTraceRing = 2048
	// DefaultSlowestTraces is K, the number of slowest completed traces
	// the tail sampler retains.
	DefaultSlowestTraces = 8
	// DefaultMaxSpansPerTrace bounds one trace's recorded spans; spans
	// beyond the cap are counted, not stored.
	DefaultMaxSpansPerTrace = 4096
	// DefaultMaxActiveTraces bounds concurrently open traces; beyond it
	// the oldest active trace is evicted (its spans keep landing in the
	// ring, but it can no longer be retained whole).
	DefaultMaxActiveTraces = 256
)

// TracerConfig bounds a Tracer. Zero values select the defaults above.
type TracerConfig struct {
	Ring             int // completed-span ring size
	Slowest          int // K slowest completed traces retained
	MaxSpansPerTrace int
	MaxActiveTraces  int
}

func (c TracerConfig) withDefaults() TracerConfig {
	if c.Ring <= 0 {
		c.Ring = DefaultTraceRing
	}
	if c.Slowest <= 0 {
		c.Slowest = DefaultSlowestTraces
	}
	if c.MaxSpansPerTrace <= 0 {
		c.MaxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	if c.MaxActiveTraces <= 0 {
		c.MaxActiveTraces = DefaultMaxActiveTraces
	}
	return c
}

// SpanRecord is one completed span.
type SpanRecord struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"` // 0 for a trace's root span
	Name   string `json:"name"`
	Start  int64  `json:"start_unix_nano"`
	Dur    int64  `json:"duration_nanos"`
}

// TraceRecord is one completed trace: the root span's identity and
// duration plus every span recorded under it (bounded; DroppedSpans
// counts the overflow).
type TraceRecord struct {
	Trace        uint64       `json:"trace"`
	Root         string       `json:"root"`
	Start        int64        `json:"start_unix_nano"`
	Dur          int64        `json:"duration_nanos"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// activeTrace accumulates the spans of one open trace until its root ends.
type activeTrace struct {
	rootSpan uint64
	spans    []SpanRecord
	dropped  int
}

// Tracer owns span identity, the completed-span ring, and the tail
// sampler. All methods are safe for concurrent use and no-ops on nil.
type Tracer struct {
	cfg TracerConfig
	seq atomic.Uint64 // span/trace ID allocator; IDs are process-unique

	mu          sync.Mutex
	ring        []SpanRecord            // guarded by mu; fixed-size, next is the write cursor
	next        int                     // guarded by mu
	total       uint64                  // guarded by mu; completed spans ever
	active      map[uint64]*activeTrace // guarded by mu
	activeOrder []uint64                // guarded by mu; FIFO eviction order
	slowest     []*TraceRecord          // guarded by mu; sorted slowest-first, len <= K
	evicted     uint64                  // guarded by mu; active traces evicted over the cap
	orphaned    uint64                  // guarded by mu; spans whose trace was already gone
}

// NewTracer builds a tracer with the given bounds.
func NewTracer(cfg TracerConfig) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{
		cfg:    cfg,
		ring:   make([]SpanRecord, cfg.Ring),
		active: make(map[uint64]*activeTrace),
	}
}

// TraceSpan is one timed phase of one trace. Start/End may run on
// different goroutines when the span hands off through a synchronized
// structure (a queue-wait span ends on the worker that claims the job);
// End is idempotent so a defensive double-End cannot double-record.
type TraceSpan struct {
	tr     *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  time.Time
	ended  atomic.Bool
}

// StartRoot opens a new trace and returns its root span.
func (t *Tracer) StartRoot(name string) *TraceSpan {
	if t == nil {
		return nil
	}
	id := t.seq.Add(1)
	sp := &TraceSpan{tr: t, trace: id, id: id, name: name, start: time.Now()}
	t.mu.Lock()
	t.active[id] = &activeTrace{rootSpan: id}
	t.activeOrder = append(t.activeOrder, id)
	if len(t.activeOrder) > t.cfg.MaxActiveTraces {
		// Evict the oldest open trace (a crash-looping or abandoned job
		// whose root never ended): it can no longer be retained whole.
		old := t.activeOrder[0]
		t.activeOrder = t.activeOrder[1:]
		if _, ok := t.active[old]; ok {
			delete(t.active, old)
			t.evicted++
		}
	}
	t.mu.Unlock()
	return sp
}

// StartChild opens a child span under sp (same trace, parent link set).
// Nil-safe: a nil receiver returns nil, so an untraced call path costs
// nothing.
func (sp *TraceSpan) StartChild(name string) *TraceSpan {
	if sp == nil || sp.tr == nil {
		return nil
	}
	return &TraceSpan{
		tr: sp.tr, trace: sp.trace, id: sp.tr.seq.Add(1), parent: sp.id,
		name: name, start: time.Now(),
	}
}

// End completes the span: the record lands in the ring and in its
// trace's accumulator; ending a root span finalizes the trace through
// the tail sampler. Idempotent and nil-safe. Returns the elapsed time.
func (sp *TraceSpan) End() time.Duration {
	if sp == nil || sp.ended.Swap(true) {
		return 0
	}
	d := time.Since(sp.start)
	rec := SpanRecord{
		Trace: sp.trace, Span: sp.id, Parent: sp.parent, Name: sp.name,
		Start: sp.start.UnixNano(), Dur: int64(d),
	}
	t := sp.tr
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	at, ok := t.active[sp.trace]
	if !ok {
		t.orphaned++
		t.mu.Unlock()
		return d
	}
	if len(at.spans) < t.cfg.MaxSpansPerTrace {
		at.spans = append(at.spans, rec)
	} else {
		at.dropped++
	}
	if rec.Span == at.rootSpan {
		t.finalizeLocked(sp.trace, at, rec)
	}
	t.mu.Unlock()
	return d
}

// Trace returns the span's trace ID (0 on nil) — the handle /tracez
// exports and load reports link by.
func (sp *TraceSpan) Trace() uint64 {
	if sp == nil {
		return 0
	}
	return sp.trace
}

// finalizeLocked closes a trace and offers it to the tail sampler: the
// K slowest completed traces survive, everything faster is forgotten.
// Called with t.mu held.
func (t *Tracer) finalizeLocked(trace uint64, at *activeTrace, root SpanRecord) {
	delete(t.active, trace)
	for i, id := range t.activeOrder {
		if id == trace {
			t.activeOrder = append(t.activeOrder[:i], t.activeOrder[i+1:]...)
			break
		}
	}
	if len(t.slowest) >= t.cfg.Slowest && root.Dur <= t.slowest[len(t.slowest)-1].Dur {
		return // faster than every retained trace
	}
	tr := &TraceRecord{
		Trace: trace, Root: root.Name, Start: root.Start, Dur: root.Dur,
		DroppedSpans: at.dropped,
		Spans:        at.spans, // ownership transfers; the active entry is gone
	}
	// Insert sorted slowest-first, then trim to K.
	i := 0
	for i < len(t.slowest) && t.slowest[i].Dur >= tr.Dur {
		i++
	}
	t.slowest = append(t.slowest, nil)
	copy(t.slowest[i+1:], t.slowest[i:])
	t.slowest[i] = tr
	if len(t.slowest) > t.cfg.Slowest {
		t.slowest = t.slowest[:t.cfg.Slowest]
	}
}

// TraceSnapshot is the tracer's frozen state: the retained slowest
// traces (slowest first), the recent completed spans, and the loss
// accounting. It marshals to JSON and embeds in run snapshots.
type TraceSnapshot struct {
	Slowest        []TraceRecord `json:"slowest,omitempty"`
	Recent         []SpanRecord  `json:"recent,omitempty"`
	ActiveTraces   int           `json:"active_traces"`
	CompletedSpans uint64        `json:"completed_spans"`
	EvictedTraces  uint64        `json:"evicted_traces,omitempty"`
	OrphanedSpans  uint64        `json:"orphaned_spans,omitempty"`
}

// Snapshot freezes the tracer. Nil-safe (returns an empty snapshot).
func (t *Tracer) Snapshot() *TraceSnapshot {
	s := &TraceSnapshot{}
	if t == nil {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.ActiveTraces = len(t.active)
	s.CompletedSpans = t.total
	s.EvictedTraces = t.evicted
	s.OrphanedSpans = t.orphaned
	s.Slowest = make([]TraceRecord, 0, len(t.slowest))
	for _, tr := range t.slowest {
		cp := *tr
		cp.Spans = append([]SpanRecord(nil), tr.Spans...)
		s.Slowest = append(s.Slowest, cp)
	}
	// Oldest-first walk of the ring, skipping never-written slots.
	n := len(t.ring)
	count := int(t.total)
	if count > n {
		count = n
	}
	s.Recent = make([]SpanRecord, 0, count)
	start := (t.next - count + n) % n
	for i := 0; i < count; i++ {
		s.Recent = append(s.Recent, t.ring[(start+i)%n])
	}
	return s
}

// chromeEvent is one Chrome trace_event record ("X" complete events plus
// "M" process-name metadata), the JSON chrome://tracing and Perfetto load.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the snapshot's retained traces as Chrome
// trace_event JSON: one "process" row per retained trace, spans as
// complete ("X") events with trace/span/parent identity in args.
func (s *TraceSnapshot) WriteChrome(w io.Writer) error {
	events := make([]chromeEvent, 0, 64)
	for _, tr := range s.Slowest {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: tr.Trace, Tid: 1,
			Args: map[string]any{"name": fmt.Sprintf("trace %d — %s (%.3fms)",
				tr.Trace, tr.Root, float64(tr.Dur)/1e6)},
		})
		for _, sp := range tr.Spans {
			events = append(events, chromeEvent{
				Name: sp.Name, Ph: "X",
				Ts:  float64(sp.Start) / 1e3,
				Dur: float64(sp.Dur) / 1e3,
				Pid: tr.Trace, Tid: 1,
				Args: map[string]any{"span": sp.Span, "parent": sp.Parent},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: chrome trace export: %w", err)
	}
	return nil
}

// spanCtxKey carries the current TraceSpan on a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp (ctx unchanged for a nil
// span), so child phases deeper in the call chain can attach to it.
func ContextWithSpan(ctx context.Context, sp *TraceSpan) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil. The nil
// result is safe to use directly — every TraceSpan method tolerates it.
func SpanFromContext(ctx context.Context) *TraceSpan {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return sp
}

// StartTraceSpan opens a child of the context's current span and returns
// a context carrying the child. With no span on ctx (tracing off) it
// returns (ctx, nil) at zero cost — the no-trace fast path of every
// instrumented call site.
func StartTraceSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}
