package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T) (*Obs, *Server) {
	t.Helper()
	o := New("r-test", nil, nil)
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return o, s
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	o, s := startTestServer(t)
	o.Counter("evolution.evaluations").Add(12)
	o.Histogram("span.core.optimize.seconds", nil).Observe(0.25)
	o.SetStatus(map[string]any{"generation": 3, "best_cost": 42.5})
	o.SetTracer(NewTracer(TracerConfig{}))
	o.Tracer().StartRoot("serve.job").End()

	t.Run("index", func(t *testing.T) {
		code, body := get(t, s, "/")
		if code != http.StatusOK || !strings.Contains(body, "/runz") {
			t.Errorf("index: code=%d body=%q", code, body)
		}
	})
	t.Run("healthz", func(t *testing.T) {
		code, body := get(t, s, "/healthz")
		if code != http.StatusOK || !strings.Contains(body, "ok") {
			t.Errorf("healthz: code=%d body=%q", code, body)
		}
	})
	t.Run("runz", func(t *testing.T) {
		code, body := get(t, s, "/runz")
		if code != http.StatusOK {
			t.Fatalf("runz: code=%d", code)
		}
		var v struct {
			Run    string         `json:"run"`
			Status map[string]any `json:"status"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("runz not JSON: %v\n%s", err, body)
		}
		if v.Run != "r-test" || v.Status["generation"] != float64(3) {
			t.Errorf("runz = %+v", v)
		}
	})
	t.Run("metricz", func(t *testing.T) {
		code, body := get(t, s, "/metricz")
		if code != http.StatusOK {
			t.Fatalf("metricz: code=%d", code)
		}
		var snap MetricsSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("metricz not JSON: %v", err)
		}
		if snap.Counters["evolution.evaluations"] != 12 {
			t.Errorf("metricz counters = %v", snap.Counters)
		}
		qs, ok := snap.Quantiles["span.core.optimize.seconds"]
		if !ok || qs.P50 <= 0 {
			t.Errorf("metricz must render latency quantiles, got %v", snap.Quantiles)
		}
	})
	t.Run("tracez", func(t *testing.T) {
		code, body := get(t, s, "/tracez")
		if code != http.StatusOK || !strings.Contains(body, "traceEvents") {
			t.Fatalf("tracez: code=%d body=%.200q", code, body)
		}
		code, body = get(t, s, "/tracez?format=json")
		if code != http.StatusOK {
			t.Fatalf("tracez json: code=%d", code)
		}
		var snap TraceSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("tracez?format=json not a TraceSnapshot: %v", err)
		}
		if len(snap.Slowest) != 1 || snap.Slowest[0].Root != "serve.job" {
			t.Errorf("tracez snapshot = %+v, want the serve.job trace", snap.Slowest)
		}
	})
	t.Run("expvar", func(t *testing.T) {
		code, body := get(t, s, "/debug/vars")
		if code != http.StatusOK || !strings.Contains(body, `"iddqsyn"`) {
			t.Errorf("expvar: code=%d, registry not published:\n%.200s", code, body)
		}
	})
	t.Run("pprof", func(t *testing.T) {
		code, body := get(t, s, "/debug/pprof/goroutine?debug=1")
		if code != http.StatusOK || !strings.Contains(body, "goroutine") {
			t.Errorf("pprof: code=%d body=%.100q", code, body)
		}
	})
	t.Run("notfound", func(t *testing.T) {
		if code, _ := get(t, s, "/nosuch"); code != http.StatusNotFound {
			t.Errorf("unknown path: code=%d, want 404", code)
		}
	})
}

// The expvar hook is process-global (Publish panics on duplicates), so a
// second server must re-point it instead of re-publishing.
func TestSecondServerRebindsExpvar(t *testing.T) {
	_, s1 := startTestServer(t)
	o2, s2 := startTestServer(t)
	o2.Counter("second.server").Inc()
	for _, s := range []*Server{s1, s2} {
		_, body := get(t, s, "/debug/vars")
		if !strings.Contains(body, "second.server") {
			t.Errorf("expvar on %s must serve the latest registry", s.Addr())
		}
	}
}

func TestServerCloseIdempotentNil(t *testing.T) {
	var s *Server
	if err := s.Close(context.Background()); err != nil {
		t.Errorf("nil server Close = %v, want nil", err)
	}
	if s.Addr() != "" {
		t.Error("nil server Addr must be empty")
	}
}
