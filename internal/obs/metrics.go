// The metrics registry: named counters, gauges and fixed-bucket
// histograms. All mutation paths are atomic — an increment is one
// atomic add, a gauge set one atomic store, a histogram observation two
// atomic adds plus a CAS loop for the sum — so optimizer worker pools
// can record without contention. The registry map itself is guarded by a
// mutex, but instrumented code looks metrics up once and holds the
// pointers, keeping the map off every hot path.

package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// set overwrites the count (snapshot restore only; counters stay
// monotonic through the public API).
func (c *Counter) set(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Gauge is a float64 metric holding the latest value of something (a
// temperature, a best cost, a population size).
type Gauge struct {
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and > Bounds[i-1]); one implicit
// overflow bucket counts everything above the last bound. Count and Sum
// track all observations, so mean latency is Sum/Count.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: bucket i counts v <= bounds[i]
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the span-free way
// to time one hot-path operation.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor — the standard shape for latency
// histograms. Out-of-domain arguments are clamped to the nearest valid
// value (metrics plumbing must not take a run down).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 {
		start = 1e-6
	}
	if factor <= 1 {
		factor = 2
	}
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1µs to ~4m in 14 exponential buckets — wide
// enough for both a single module estimate and a full generation.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 4, 14) }

// Registry holds one run's named metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use and tolerate
// a nil receiver (returning nil metrics whose methods are no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing buckets;
// nil bounds default to LatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation within the bucket holding the target
// rank: the first bucket interpolates from 0, the overflow bucket clamps
// to the last bound (the histogram carries no upper edge for it). An
// empty histogram reports 0. Out-of-range q is clamped.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	var seen float64
	for i, c := range hs.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = hs.Bounds[i-1]
		}
		if i >= len(hs.Bounds) {
			// Overflow bucket: no upper edge, clamp to the last bound.
			return lo
		}
		hi := hs.Bounds[i]
		if seen+float64(c) >= rank {
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		seen += float64(c)
	}
	return hs.Bounds[len(hs.Bounds)-1]
}

// QuantileSummary is the latency triple /metricz renders per histogram.
type QuantileSummary struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// MetricsSnapshot is a registry's frozen state, JSON-marshalable with
// deterministic (sorted) key order. Quantiles is a derived view filled
// only by the HTTP handlers (ComputeQuantiles) — never by Snapshot — so
// checkpoint-embedded snapshots stay byte-stable across releases.
type MetricsSnapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Quantiles  map[string]QuantileSummary   `json:"quantiles,omitempty"`
}

// ComputeQuantiles derives the p50/p95/p99 summary for every non-empty
// histogram in the snapshot. Nil-safe.
func (s *MetricsSnapshot) ComputeQuantiles() {
	if s == nil || len(s.Histograms) == 0 {
		return
	}
	s.Quantiles = make(map[string]QuantileSummary, len(s.Histograms))
	for name, hs := range s.Histograms {
		if hs.Count == 0 {
			continue
		}
		s.Quantiles[name] = QuantileSummary{
			P50: hs.Quantile(0.50), P95: hs.Quantile(0.95), P99: hs.Quantile(0.99),
		}
	}
}

// Snapshot freezes the registry. Each metric is read atomically; the
// snapshot as a whole is not a single atomic cut across metrics, which
// is fine for trend data (and the only option without a global lock on
// the hot path).
func (r *Registry) Snapshot() *MetricsSnapshot {
	s := &MetricsSnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.buckets)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Restore seeds the registry from a snapshot, so cumulative counters and
// histograms continue monotonically across a checkpoint resume. Metrics
// absent from the snapshot are untouched; histogram bounds come from the
// snapshot (first creation wins, as with Histogram).
func (r *Registry) Restore(s *MetricsSnapshot) {
	if r == nil || s == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).set(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		h := r.Histogram(name, hs.Bounds)
		if len(hs.Counts) != len(h.buckets) {
			continue // foreign bucket layout; leave the live histogram alone
		}
		for i, c := range hs.Counts {
			h.buckets[i].Store(c)
		}
		h.count.Store(hs.Count)
		h.sumBits.Store(math.Float64bits(hs.Sum))
	}
}
