package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	var b strings.Builder
	o := New("r-1", nil, NewLogger(&b, FormatText, LevelDebug).WithClock(pinnedClock()))

	outer := o.StartSpan("optimize", "circuit", "c17")
	inner := outer.Child("generation")
	grand := inner.Child("evaluate")
	if d := grand.End(); d < 0 {
		t.Errorf("End returned negative duration %v", d)
	}
	inner.End()
	outer.End("modules", 3)

	out := b.String()
	for _, want := range []string{
		"span begin", "span=optimize depth=0 circuit=c17",
		"span=generation depth=1",
		"span=evaluate depth=2",
		"span end", "modules=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
	// Each span name feeds its own latency histogram.
	s := o.Registry().Snapshot()
	for _, name := range []string{"span.optimize.seconds", "span.generation.seconds", "span.evaluate.seconds"} {
		if s.Histograms[name].Count != 1 {
			t.Errorf("%s Count = %d, want 1", name, s.Histograms[name].Count)
		}
	}
}

func TestSpanNil(t *testing.T) {
	var o *Obs
	sp := o.StartSpan("x")
	if sp != nil {
		t.Fatal("nil Obs must yield a nil span")
	}
	if sp.Child("y") != nil {
		t.Error("nil span Child must stay nil")
	}
	if sp.End() != 0 {
		t.Error("nil span End must return 0")
	}
}

func TestSpanWithoutDebugLoggingStillRecords(t *testing.T) {
	var b strings.Builder
	o := New("r-1", nil, NewLogger(&b, FormatText, LevelWarn))
	sp := o.StartSpan("quiet")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("duration %v, want >= 1ms", d)
	}
	if b.Len() != 0 {
		t.Errorf("no span events expected above debug level, got %q", b.String())
	}
	if o.Registry().Snapshot().Histograms["span.quiet.seconds"].Count != 1 {
		t.Error("span duration must be recorded even when debug logging is off")
	}
}
