// Nested timing spans. A span times one phase of a run — an estimator
// build, a generation, a checkpoint write, a partcheck audit — logging
// begin/end events at debug level and recording the duration into a
// per-span-name latency histogram, so the same instrumentation feeds
// both the event stream and the metrics snapshot.

package obs

import "time"

// Span is one timed phase. Spans nest explicitly (Child), carry their
// depth into the log stream, and are single-goroutine values — share the
// Obs across workers, not a Span.
type Span struct {
	o     *Obs
	name  string
	depth int
	start time.Time
}

// StartSpan opens a top-level span and logs its begin event.
func (o *Obs) StartSpan(name string, kv ...any) *Span {
	return o.startSpan(name, 0, kv)
}

// Child opens a nested span one level deeper.
func (sp *Span) Child(name string, kv ...any) *Span {
	if sp == nil {
		return nil
	}
	return sp.o.startSpan(name, sp.depth+1, kv)
}

func (o *Obs) startSpan(name string, depth int, kv []any) *Span {
	if o == nil {
		return nil
	}
	if l := o.Log(); l.Enabled(LevelDebug) {
		l.Debug("span begin", append([]any{"span", name, "depth", depth}, kv...)...)
	}
	return &Span{o: o, name: name, depth: depth, start: time.Now()}
}

// End closes the span: the elapsed seconds go into the histogram
// "span." + name + ".seconds" and the end event (with the duration and
// any extra fields) into the log. Returns the elapsed time. End on a
// nil span is a no-op returning 0.
func (sp *Span) End(kv ...any) time.Duration {
	if sp == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.o.Histogram("span."+sp.name+".seconds", nil).Observe(d.Seconds())
	if l := sp.o.Log(); l.Enabled(LevelDebug) {
		l.Debug("span end", append([]any{
			"span", sp.name, "depth", sp.depth, "seconds", d.Seconds(),
		}, kv...)...)
	}
	return d
}
