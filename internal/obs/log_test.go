package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// pinnedClock returns a deterministic time source for golden output.
func pinnedClock() func() time.Time {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 123e6, time.UTC)
	return func() time.Time { return t0 }
}

func TestLoggerTextGolden(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText, LevelDebug).WithClock(pinnedClock()).WithRun("r-1")
	l.Info("new best", "gen", 7, "cost", 12.5, "note", "two words")
	want := `2026-08-06T12:00:00.123Z info  run=r-1 "new best" gen=7 cost=12.5 note="two words"` + "\n"
	if b.String() != want {
		t.Errorf("text record:\n got %q\nwant %q", b.String(), want)
	}
}

func TestLoggerJSONGolden(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatJSON, LevelDebug).WithClock(pinnedClock()).WithRun("r-1")
	l.With("circuit", "c432").Warn("stalled", "gen", 9)
	want := `{"ts":"2026-08-06T12:00:00.123Z","level":"warn","run":"r-1","msg":"stalled","circuit":"c432","gen":9}` + "\n"
	if b.String() != want {
		t.Errorf("json record:\n got %q\nwant %q", b.String(), want)
	}
	// The hand-assembled record must stay valid JSON.
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if m["gen"] != float64(9) || m["circuit"] != "c432" {
		t.Errorf("decoded fields wrong: %v", m)
	}
}

func TestLoggerLevelThreshold(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText, LevelWarn).WithClock(pinnedClock())
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("shown")
	if got := strings.Count(b.String(), "shown"); got != 2 {
		t.Errorf("emitted %d records, want 2 (warn threshold):\n%s", got, b.String())
	}
	if strings.Contains(b.String(), "hidden") {
		t.Errorf("below-threshold record emitted:\n%s", b.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with the threshold")
	}
}

func TestLoggerDanglingKey(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText, LevelDebug).WithClock(pinnedClock())
	l.Info("oops", "key") // no value: must be visible, not dropped
	if !strings.Contains(b.String(), `key=(MISSING)`) {
		t.Errorf("dangling key not surfaced: %q", b.String())
	}
}

func TestLoggerNil(t *testing.T) {
	var l *Logger
	// All no-ops; must not panic.
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With("a", 1) != nil || l.WithRun("r") != nil || l.WithClock(time.Now) != nil {
		t.Error("derivations of a nil logger must stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger must report disabled")
	}
}

func TestLoggerConcurrentNoInterleave(t *testing.T) {
	var b safeBuilder
	l := NewLogger(&b, FormatText, LevelDebug).WithClock(pinnedClock())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("event", "worker", id, "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "2026-08-06T12:00:00.123Z info") || !strings.Contains(line, "worker=") {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
	if f, err := ParseFormat("JSON"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(JSON) = %v, %v", f, err)
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat must reject unknown formats")
	}
}

// safeBuilder is a mutex-guarded strings.Builder. The logger serializes
// writes itself; the guard here keeps the *test's* read race-free.
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
