// The structured event logger: leveled, text or JSON, one line per
// event, every line stamped with the run ID and any bound fields.
// Records are rendered under a mutex so concurrent workers never
// interleave partial lines. Field order is deterministic (bound fields
// first, then call-site pairs in argument order), which keeps golden
// tests and log-diffing honest.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level grades log events.
type Level int8

// The levels, ordered: a logger emits events at or above its own level.
const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int8(l))
}

// ParseLevel resolves a level name (as used by the -log-level flags).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Format selects the log record encoding.
type Format int8

// The formats.
const (
	FormatText Format = iota
	FormatJSON
)

// ParseFormat resolves a format name (as used by the -log-format flags).
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return 0, fmt.Errorf("obs: unknown log format %q (want text or json)", s)
}

// field is one bound key/value pair.
type field struct {
	key   string
	value any
}

// Logger writes structured, leveled events. Loggers are immutable —
// With/WithRun derive children — and safe for concurrent use; a nil
// *Logger discards everything.
type Logger struct {
	mu     *sync.Mutex // shared by all derived loggers (one output stream)
	w      io.Writer
	format Format
	level  Level
	clock  func() time.Time
	run    string
	fields []field
}

// NewLogger returns a logger writing records at or above level to w.
func NewLogger(w io.Writer, format Format, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, format: format, level: level, clock: time.Now}
}

// WithRun derives a logger stamping every record with the run ID.
func (l *Logger) WithRun(run string) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.run = run
	return &d
}

// With derives a logger with additional bound key/value pairs (given as
// alternating key, value arguments, slog-style).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.fields = append(append([]field(nil), l.fields...), pairs(kv)...)
	return &d
}

// WithClock derives a logger using the given time source (tests pin it
// for golden output).
func (l *Logger) WithClock(clock func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.clock = clock
	return &d
}

// Enabled reports whether events at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// Debug emits a debug event.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }

// Info emits an info event.
func (l *Logger) Info(msg string, kv ...any) { l.emit(LevelInfo, msg, kv) }

// Warn emits a warning event.
func (l *Logger) Warn(msg string, kv ...any) { l.emit(LevelWarn, msg, kv) }

// Error emits an error event.
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

// pairs folds an alternating key/value argument list into fields. A
// dangling key gets the value "(MISSING)" rather than being dropped — a
// call-site bug should be visible in the output, not hidden.
func pairs(kv []any) []field {
	out := make([]field, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var v any = "(MISSING)"
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		out = append(out, field{key: key, value: v})
	}
	return out
}

func (l *Logger) emit(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	ts := l.clock().UTC()
	fs := l.fields
	if len(kv) > 0 {
		fs = append(append([]field(nil), fs...), pairs(kv)...)
	}
	var b strings.Builder
	if l.format == FormatJSON {
		writeJSONRecord(&b, ts, lv, l.run, msg, fs)
	} else {
		writeTextRecord(&b, ts, lv, l.run, msg, fs)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String()) // logging must never fail the run
}

// timeLayout is RFC3339 with millisecond precision — compact and sortable.
const timeLayout = "2006-01-02T15:04:05.000Z"

func writeTextRecord(b *strings.Builder, ts time.Time, lv Level, run, msg string, fs []field) {
	b.WriteString(ts.Format(timeLayout))
	fmt.Fprintf(b, " %-5s", lv)
	if run != "" {
		b.WriteString(" run=")
		b.WriteString(run)
	}
	b.WriteByte(' ')
	b.WriteString(textValue(msg))
	for _, f := range fs {
		b.WriteByte(' ')
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(textValue(fmt.Sprint(f.value)))
	}
}

// textValue quotes a value only when it would break the k=v grammar.
func textValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

func writeJSONRecord(b *strings.Builder, ts time.Time, lv Level, run, msg string, fs []field) {
	// Hand-assembled so the field order is deterministic: ts, level, run,
	// msg, then the fields in binding order (encoding/json alone would
	// need an ordered-map type for that).
	b.WriteString(`{"ts":"`)
	b.WriteString(ts.Format(timeLayout))
	b.WriteString(`","level":"`)
	b.WriteString(lv.String())
	b.WriteString(`"`)
	if run != "" {
		b.WriteString(`,"run":`)
		b.WriteString(jsonValue(run))
	}
	b.WriteString(`,"msg":`)
	b.WriteString(jsonValue(msg))
	for _, f := range fs {
		b.WriteByte(',')
		b.WriteString(jsonValue(f.key))
		b.WriteByte(':')
		b.WriteString(jsonValue(f.value))
	}
	b.WriteByte('}')
}

// jsonValue marshals one value, degrading to a quoted string on error
// (an unmarshalable field must not lose the whole record).
func jsonValue(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprint(v))
	}
	return string(data)
}
