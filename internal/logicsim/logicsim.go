// Package logicsim provides gate-level logic simulation for the IDDQ test
// flow: a three-valued event-driven simulator used to establish the
// quiescent state after each test vector (and from it the fault-free IDDQ
// of every module), and a 64-pattern parallel two-valued simulator used by
// the fault simulator in package atpg.
package logicsim

import (
	"fmt"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
)

// Value is a three-valued logic level.
type Value uint8

// The three logic values. X orders first so that a zeroed slice is
// all-unknown.
const (
	X Value = iota
	Zero
	One
)

// String returns "X", "0" or "1".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	}
	return "X"
}

// FromBool converts a Boolean to a definite Value.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// eval3 computes the three-valued gate function.
func eval3(t circuit.GateType, in []Value) Value {
	switch t {
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return not3(in[0])
	case circuit.And, circuit.Nand:
		v := One
		for _, x := range in {
			if x == Zero {
				v = Zero
				break
			}
			if x == X {
				v = X
			}
		}
		if t == circuit.Nand {
			return not3(v)
		}
		return v
	case circuit.Or, circuit.Nor:
		v := Zero
		for _, x := range in {
			if x == One {
				v = One
				break
			}
			if x == X {
				v = X
			}
		}
		if t == circuit.Nor {
			return not3(v)
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := Zero
		for _, x := range in {
			if x == X {
				return X
			}
			if x == One {
				v = not3(v)
			}
		}
		if t == circuit.Xnor {
			return not3(v)
		}
		return v
	}
	return mustEval3(t)
}

// mustEval3 rejects evaluation of a gate type with no three-valued
// function — an invariant violation (the simulator only walks validated
// circuits), so it panics per the project's panic policy.
func mustEval3(t circuit.GateType) Value {
	panic("logicsim: eval3 on " + t.String())
}

func not3(v Value) Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// Simulator is an incremental three-valued gate-level simulator. Apply a
// primary-input vector and read any net's settled value. Re-applying a
// vector propagates only the nets that actually change (event-driven over
// the levelised netlist), which makes long vector sequences cheap.
type Simulator struct {
	c      *circuit.Circuit
	values []Value
	levels []int
	// dirty[l] holds gate IDs at level l scheduled for re-evaluation.
	dirty   [][]int
	inDirty []bool
	started bool
}

// New creates a Simulator with all nets at X.
func New(c *circuit.Circuit) *Simulator {
	return &Simulator{
		c:       c,
		values:  make([]Value, c.NumGates()),
		levels:  c.Levels(),
		dirty:   make([][]int, c.Depth()+1),
		inDirty: make([]bool, c.NumGates()),
	}
}

// Circuit returns the netlist being simulated.
func (s *Simulator) Circuit() *circuit.Circuit { return s.c }

// Apply sets the primary inputs (vector indexed like Circuit.Inputs) and
// propagates to a settled state. Vectors shorter than the input list leave
// the remaining inputs unchanged.
func (s *Simulator) Apply(vector []Value) error {
	if len(vector) > len(s.c.Inputs) {
		return fmt.Errorf("logicsim: vector has %d values for %d inputs", len(vector), len(s.c.Inputs))
	}
	for i, v := range vector {
		id := s.c.Inputs[i]
		if s.values[id] != v || !s.started {
			s.values[id] = v
			s.schedule(id)
		}
	}
	s.started = true
	s.propagate()
	return nil
}

// ApplyBits is Apply for a fully specified Boolean vector.
func (s *Simulator) ApplyBits(bits []bool) error {
	vec := make([]Value, len(bits))
	for i, b := range bits {
		vec[i] = FromBool(b)
	}
	return s.Apply(vec)
}

func (s *Simulator) schedule(id int) {
	for _, f := range s.c.Gates[id].Fanout {
		if !s.inDirty[f] {
			s.inDirty[f] = true
			l := s.levels[f]
			s.dirty[l] = append(s.dirty[l], f)
		}
	}
}

func (s *Simulator) propagate() {
	var in [16]Value
	for l := 1; l < len(s.dirty); l++ {
		queue := s.dirty[l]
		s.dirty[l] = s.dirty[l][:0]
		for _, id := range queue {
			s.inDirty[id] = false
			g := &s.c.Gates[id]
			args := in[:0]
			for _, f := range g.Fanin {
				args = append(args, s.values[f])
			}
			nv := eval3(g.Type, args)
			if nv != s.values[id] {
				s.values[id] = nv
				s.schedule(id)
			}
		}
	}
}

// Value returns the settled value of gate id.
func (s *Simulator) Value(id int) Value { return s.values[id] }

// Values returns the settled values of all gates; the slice is shared and
// must not be modified.
func (s *Simulator) Values() []Value { return s.values }

// OutputValues returns the settled primary-output values in Outputs order.
func (s *Simulator) OutputValues() []Value {
	out := make([]Value, len(s.c.Outputs))
	for i, o := range s.c.Outputs {
		out[i] = s.values[o]
	}
	return out
}

// FaultFreeIDDQ returns the quiescent current drawn by the given gates in
// the current settled state, using the state-dependent leakage model of
// the cell library. Unknown (X) inputs are treated as logic high, the
// pessimistic choice for the discriminability constraint.
func (s *Simulator) FaultFreeIDDQ(a *celllib.Annotated, gates []int) float64 {
	var sum float64
	var buf [16]bool
	for _, id := range gates {
		cell := a.Cell[id]
		if cell == nil {
			continue
		}
		g := &s.c.Gates[id]
		in := buf[:0]
		for _, f := range g.Fanin {
			in = append(in, s.values[f] != Zero)
		}
		sum += cell.LeakageForState(in)
	}
	return sum
}
