package logicsim

import (
	"fmt"

	"iddqsyn/internal/circuit"
)

// Parallel is a two-valued parallel-pattern simulator: each net carries a
// 64-bit word holding the net's value under 64 test vectors at once. The
// fault simulator in package atpg uses it to evaluate bridging-fault
// detection conditions for whole vector batches in one pass.
type Parallel struct {
	c     *circuit.Circuit
	words []uint64
	order []int
}

// NewParallel creates a parallel simulator for c.
func NewParallel(c *circuit.Circuit) *Parallel {
	return &Parallel{
		c:     c,
		words: make([]uint64, c.NumGates()),
		order: c.TopoOrder(),
	}
}

// ApplyBatch loads up to 64 vectors (vectors[k][i] is the value of input i
// under pattern k) and simulates the whole batch. Unused pattern slots
// replicate the last vector, so word-level reductions stay well defined.
// A panic inside the batch evaluation (e.g. a gate type the word
// evaluator does not model) is recovered into an error, so a parallel
// caller — the evolution cost workers drive batch fault simulation
// through this path — degrades to a failed evaluation instead of
// crashing the process.
func (p *Parallel) ApplyBatch(vectors [][]bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("logicsim: batch simulation panicked: %v", r)
		}
	}()
	if len(vectors) == 0 || len(vectors) > 64 {
		return fmt.Errorf("logicsim: batch of %d vectors (want 1..64)", len(vectors))
	}
	for _, v := range vectors {
		if len(v) != len(p.c.Inputs) {
			return fmt.Errorf("logicsim: vector has %d bits for %d inputs", len(v), len(p.c.Inputs))
		}
	}
	for i, id := range p.c.Inputs {
		var w uint64
		for k := 0; k < 64; k++ {
			vi := k
			if vi >= len(vectors) {
				vi = len(vectors) - 1
			}
			if vectors[vi][i] {
				w |= 1 << uint(k)
			}
		}
		p.words[id] = w
	}
	p.simulate()
	return nil
}

func (p *Parallel) simulate() {
	for _, id := range p.order {
		g := &p.c.Gates[id]
		if g.Type == circuit.Input {
			continue
		}
		p.words[id] = evalWord(g.Type, g.Fanin, p.words)
	}
}

func evalWord(t circuit.GateType, fanin []int, words []uint64) uint64 {
	switch t {
	case circuit.Buf:
		return words[fanin[0]]
	case circuit.Not:
		return ^words[fanin[0]]
	case circuit.And, circuit.Nand:
		v := ^uint64(0)
		for _, f := range fanin {
			v &= words[f]
		}
		if t == circuit.Nand {
			return ^v
		}
		return v
	case circuit.Or, circuit.Nor:
		var v uint64
		for _, f := range fanin {
			v |= words[f]
		}
		if t == circuit.Nor {
			return ^v
		}
		return v
	case circuit.Xor, circuit.Xnor:
		var v uint64
		for _, f := range fanin {
			v ^= words[f]
		}
		if t == circuit.Xnor {
			return ^v
		}
		return v
	}
	return mustEvalWord(t)
}

// mustEvalWord rejects word-parallel evaluation of a gate type with no
// Boolean function — an invariant violation (the simulator only walks
// validated circuits), so it panics per the project's panic policy.
func mustEvalWord(t circuit.GateType) uint64 {
	panic("logicsim: evalWord on " + t.String())
}

// Word returns the 64-pattern value word of gate id after ApplyBatch.
func (p *Parallel) Word(id int) uint64 { return p.words[id] }

// PatternValue returns gate id's value under pattern k of the last batch.
func (p *Parallel) PatternValue(id, k int) bool {
	return p.words[id]&(1<<uint(k)) != 0
}
