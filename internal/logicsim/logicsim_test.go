package logicsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
)

func TestValueString(t *testing.T) {
	if X.String() != "X" || Zero.String() != "0" || One.String() != "1" {
		t.Error("Value.String mismatch")
	}
}

func TestEval3Definite(t *testing.T) {
	// With definite inputs, eval3 must agree with GateType.Eval.
	types := []circuit.GateType{circuit.Buf, circuit.Not, circuit.And, circuit.Nand,
		circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor}
	for _, typ := range types {
		n := 2
		if typ == circuit.Buf || typ == circuit.Not {
			n = 1
		}
		for mask := 0; mask < 1<<n; mask++ {
			bools := make([]bool, n)
			vals := make([]Value, n)
			for i := 0; i < n; i++ {
				bools[i] = mask&(1<<i) != 0
				vals[i] = FromBool(bools[i])
			}
			want := FromBool(typ.Eval(bools))
			if got := eval3(typ, vals); got != want {
				t.Errorf("eval3(%v, %v) = %v, want %v", typ, vals, got, want)
			}
		}
	}
}

func TestEval3Unknowns(t *testing.T) {
	cases := []struct {
		typ  circuit.GateType
		in   []Value
		want Value
	}{
		{circuit.And, []Value{Zero, X}, Zero}, // controlling value dominates X
		{circuit.And, []Value{One, X}, X},
		{circuit.Nand, []Value{Zero, X}, One},
		{circuit.Nand, []Value{One, X}, X},
		{circuit.Or, []Value{One, X}, One},
		{circuit.Or, []Value{Zero, X}, X},
		{circuit.Nor, []Value{One, X}, Zero},
		{circuit.Xor, []Value{One, X}, X}, // XOR never blocks X
		{circuit.Xnor, []Value{Zero, X}, X},
		{circuit.Not, []Value{X}, X},
		{circuit.Buf, []Value{X}, X},
	}
	for _, tc := range cases {
		if got := eval3(tc.typ, tc.in); got != tc.want {
			t.Errorf("eval3(%v, %v) = %v, want %v", tc.typ, tc.in, got, tc.want)
		}
	}
}

func TestSimulatorC17(t *testing.T) {
	c := circuits.C17()
	s := New(c)
	// All inputs zero: outputs g5=0, g6=0 (hand computed).
	if err := s.ApplyBits([]bool{false, false, false, false, false}); err != nil {
		t.Fatal(err)
	}
	out := s.OutputValues()
	if out[0] != Zero || out[1] != Zero {
		t.Errorf("all-zero outputs = %v, want [0 0]", out)
	}
	// All ones: g5=1, g6=0.
	if err := s.ApplyBits([]bool{true, true, true, true, true}); err != nil {
		t.Fatal(err)
	}
	out = s.OutputValues()
	if out[0] != One || out[1] != Zero {
		t.Errorf("all-one outputs = %v, want [1 0]", out)
	}
}

func TestSimulatorAllX(t *testing.T) {
	c := circuits.C17()
	s := New(c)
	if err := s.Apply([]Value{X, X, X, X, X}); err != nil {
		t.Fatal(err)
	}
	for _, o := range c.Outputs {
		if s.Value(o) != X {
			t.Errorf("output %s = %v with all-X inputs, want X", c.Gates[o].Name, s.Value(o))
		}
	}
}

func TestSimulatorPartialX(t *testing.T) {
	// NAND(0, X) = 1: controlling values must propagate through X.
	c := circuits.C17()
	s := New(c)
	// I1=0 makes g1 = NAND(0, X) = 1 regardless of I3.
	if err := s.Apply([]Value{Zero, X, X, X, X}); err != nil {
		t.Fatal(err)
	}
	g1, _ := c.GateByName("g1")
	if s.Value(g1.ID) != One {
		t.Errorf("g1 = %v, want 1 (NAND with a controlling 0)", s.Value(g1.ID))
	}
}

func TestSimulatorVectorTooLong(t *testing.T) {
	s := New(circuits.C17())
	if err := s.Apply(make([]Value, 9)); err == nil {
		t.Error("want error for oversized vector")
	}
}

// TestSimulatorAgainstDirect cross-checks the event-driven simulator
// against direct topological evaluation on random circuits and vectors.
func TestSimulatorAgainstDirect(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := circuits.RandomLogic(circuits.Spec{
			Name: "p", Inputs: 6, Outputs: 3,
			Gates: 40 + rng.Intn(60), Depth: 6 + rng.Intn(6), Seed: seed,
		})
		if err != nil {
			return false
		}
		s := New(c)
		direct := make([]bool, c.NumGates())
		for trial := 0; trial < 8; trial++ {
			bits := make([]bool, len(c.Inputs))
			for i := range bits {
				bits[i] = rng.Intn(2) == 1
			}
			if err := s.ApplyBits(bits); err != nil {
				return false
			}
			for i, id := range c.Inputs {
				direct[id] = bits[i]
			}
			for _, id := range c.TopoOrder() {
				g := &c.Gates[id]
				if g.Type == circuit.Input {
					continue
				}
				in := make([]bool, len(g.Fanin))
				for i, f := range g.Fanin {
					in[i] = direct[f]
				}
				direct[id] = g.Type.Eval(in)
			}
			for id := range c.Gates {
				if s.Value(id) != FromBool(direct[id]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFaultFreeIDDQ(t *testing.T) {
	c := circuits.C17()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	gates := c.LogicGates()

	if err := s.ApplyBits([]bool{false, false, false, false, false}); err != nil {
		t.Fatal(err)
	}
	low := s.FaultFreeIDDQ(a, gates)
	if err := s.ApplyBits([]bool{true, true, true, true, true}); err != nil {
		t.Fatal(err)
	}
	high := s.FaultFreeIDDQ(a, gates)
	if low <= 0 || high <= 0 {
		t.Fatalf("IDDQ must be positive: low=%g high=%g", low, high)
	}
	// The all-ones state biases more inputs high on the first level, so its
	// leakage must be at least the all-zero state's.
	if high < low {
		t.Errorf("leak(all ones)=%g < leak(all zeros)=%g", high, low)
	}
	// Never above the worst case used by the constraint.
	if max := a.TotalLeakageMax(gates); high > max+1e-20 {
		t.Errorf("state leakage %g exceeds worst case %g", high, max)
	}
}

func TestFaultFreeIDDQPessimisticX(t *testing.T) {
	c := circuits.C17()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	gates := c.LogicGates()
	if err := s.Apply([]Value{X, X, X, X, X}); err != nil {
		t.Fatal(err)
	}
	allX := s.FaultFreeIDDQ(a, gates)
	if max := a.TotalLeakageMax(gates); !approxEq(allX, max) {
		t.Errorf("all-X leakage %g should equal worst case %g (X treated as 1)", allX, max)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-18+1e-9*b
}

func TestParallelMatchesScalar(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	p := NewParallel(c)
	s := New(c)
	rng := rand.New(rand.NewSource(11))
	batch := make([][]bool, 64)
	for k := range batch {
		batch[k] = make([]bool, len(c.Inputs))
		for i := range batch[k] {
			batch[k][i] = rng.Intn(2) == 1
		}
	}
	if err := p.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 17, 63} {
		if err := s.ApplyBits(batch[k]); err != nil {
			t.Fatal(err)
		}
		for id := range c.Gates {
			want := s.Value(id) == One
			if got := p.PatternValue(id, k); got != want {
				t.Fatalf("pattern %d gate %s: parallel=%v scalar=%v", k, c.Gates[id].Name, got, want)
			}
		}
	}
}

func TestParallelShortBatchReplicates(t *testing.T) {
	c := circuits.C17()
	p := NewParallel(c)
	v := []bool{true, false, true, false, true}
	if err := p.ApplyBatch([][]bool{v}); err != nil {
		t.Fatal(err)
	}
	// All 64 slots must equal pattern 0.
	for id := range c.Gates {
		w := p.Word(id)
		if w != 0 && w != ^uint64(0) {
			t.Errorf("gate %s word = %x, want all-equal bits", c.Gates[id].Name, w)
		}
	}
}

func TestParallelErrors(t *testing.T) {
	c := circuits.C17()
	p := NewParallel(c)
	if err := p.ApplyBatch(nil); err == nil {
		t.Error("want error for empty batch")
	}
	if err := p.ApplyBatch(make([][]bool, 65)); err == nil {
		t.Error("want error for oversized batch")
	}
	if err := p.ApplyBatch([][]bool{{true}}); err == nil {
		t.Error("want error for wrong vector width")
	}
}

func BenchmarkSimulatorRandomVectors(b *testing.B) {
	b.ReportAllocs()
	c := circuits.MustISCAS85Like("c880")
	s := New(c)
	rng := rand.New(rand.NewSource(1))
	bits := make([]bool, len(c.Inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range bits {
			bits[j] = rng.Intn(2) == 1
		}
		if err := s.ApplyBits(bits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel64Patterns(b *testing.B) {
	b.ReportAllocs()
	c := circuits.MustISCAS85Like("c880")
	p := NewParallel(c)
	rng := rand.New(rand.NewSource(1))
	batch := make([][]bool, 64)
	for k := range batch {
		batch[k] = make([]bool, len(c.Inputs))
		for i := range batch[k] {
			batch[k][i] = rng.Intn(2) == 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
