package logicsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
)

func unitDelays(c *circuit.Circuit, d float64) []float64 {
	out := make([]float64, c.NumGates())
	for i := range out {
		out[i] = d
	}
	return out
}

func TestNewTimingValidation(t *testing.T) {
	c := circuits.C17()
	if _, err := NewTiming(c, make([]float64, 3)); err == nil {
		t.Error("want error for wrong delay count")
	}
	if _, err := NewTiming(c, make([]float64, c.NumGates())); err == nil {
		t.Error("want error for zero gate delays")
	}
	if _, err := NewTiming(c, unitDelays(c, 1e-9)); err != nil {
		t.Errorf("valid delays rejected: %v", err)
	}
}

func TestTimingInverterChain(t *testing.T) {
	b := circuit.NewBuilder("chain")
	b.AddInput("a")
	prev := "a"
	for i := 0; i < 4; i++ {
		n := "n" + string(rune('0'+i))
		b.AddGate(n, circuit.Not, prev)
		prev = n
	}
	b.MarkOutput(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTiming(c, unitDelays(c, 2e-9))
	if err != nil {
		t.Fatal(err)
	}
	events, err := ts.Run([]bool{false}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4 (one per stage)", len(events))
	}
	for i, ev := range events {
		want := float64(i+1) * 2e-9
		if diff := ev.Time - want; diff > 1e-15 || diff < -1e-15 {
			t.Errorf("stage %d switched at %g, want %g", i, ev.Time, want)
		}
	}
}

func TestTimingStaticHazard(t *testing.T) {
	// x = XOR(a, NOT a): flipping a produces the classic static-1 hazard
	// — the output pulses even though its settled value is unchanged.
	b := circuit.NewBuilder("hazard")
	b.AddInput("a")
	b.AddGate("n", circuit.Not, "a")
	b.AddGate("x", circuit.Xor, "a", "n")
	b.MarkOutput("x")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTiming(c, unitDelays(c, 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	events, err := ts.Run([]bool{false}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := c.GateByName("x")
	pulses := 0
	for _, ev := range events {
		if ev.Gate == x.ID {
			pulses++
		}
	}
	if pulses != 2 {
		t.Errorf("x switched %d times, want 2 (hazard pulse)", pulses)
	}
	if !ts.State(x.ID) {
		t.Error("x must settle back to 1")
	}
}

func TestTimingNoChangeNoEvents(t *testing.T) {
	c := circuits.C17()
	ts, err := NewTiming(c, unitDelays(c, 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	v := []bool{true, false, true, false, true}
	events, err := ts.Run(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("same vector produced %d events", len(events))
	}
}

func TestTimingBadWidth(t *testing.T) {
	c := circuits.C17()
	ts, err := NewTiming(c, unitDelays(c, 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Run([]bool{true}, []bool{false}); err == nil {
		t.Error("want error for wrong vector width")
	}
}

// Property: after any Run the timing simulator's final state matches the
// zero-delay settled state of the target vector, on random circuits with
// random per-gate delays.
func TestTimingFinalStateMatchesSettled(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := circuits.RandomLogic(circuits.Spec{
			Name: "p", Inputs: 6, Outputs: 3,
			Gates: 30 + rng.Intn(50), Depth: 5 + rng.Intn(5), Seed: seed,
		})
		if err != nil {
			return false
		}
		delays := make([]float64, c.NumGates())
		for i := range delays {
			delays[i] = (0.5 + rng.Float64()) * 1e-9
		}
		ts, err := NewTiming(c, delays)
		if err != nil {
			return false
		}
		ref := New(c)
		for trial := 0; trial < 4; trial++ {
			from := randomVec(rng, len(c.Inputs))
			to := randomVec(rng, len(c.Inputs))
			if _, err := ts.Run(from, to); err != nil {
				return false
			}
			if err := ref.ApplyBits(to); err != nil {
				return false
			}
			for id := range c.Gates {
				if FromBool(ts.State(id)) != ref.Value(id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func randomVec(rng *rand.Rand, n int) []bool {
	v := make([]bool, n)
	for i := range v {
		v[i] = rng.Intn(2) == 1
	}
	return v
}

// Property: every event time is positive and events arrive time-sorted.
func TestTimingEventOrdering(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	a := unitDelays(c, 1.5e-9)
	ts, err := NewTiming(c, a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		events, err := ts.Run(randomVec(rng, len(c.Inputs)), randomVec(rng, len(c.Inputs)))
		if err != nil {
			t.Fatal(err)
		}
		last := 0.0
		for _, ev := range events {
			if ev.Time < last {
				t.Fatal("events out of order")
			}
			if ev.Time <= 0 {
				t.Fatal("non-positive event time")
			}
			last = ev.Time
		}
	}
}
