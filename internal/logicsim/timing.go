package logicsim

import (
	"container/heap"
	"fmt"
	"sort"

	"iddqsyn/internal/circuit"
)

// SwitchEvent records one gate output transition during a timing
// simulation.
type SwitchEvent struct {
	Gate int
	Time float64 // seconds after the input change
}

// TimingSim is an event-driven transport-delay timing simulator: applying
// a new input vector propagates transitions through the netlist with each
// gate's real delay, reproducing hazards and multiple switching — the
// transient activity the §3.1 current estimator upper-bounds.
type TimingSim struct {
	c      *circuit.Circuit
	delays []float64 // per-gate propagation delay, s
	state  []bool
}

// NewTiming creates a timing simulator with per-gate delays (indexed by
// gate ID; input gates ignore their entry).
func NewTiming(c *circuit.Circuit, delays []float64) (*TimingSim, error) {
	if len(delays) != c.NumGates() {
		return nil, fmt.Errorf("logicsim: %d delays for %d gates", len(delays), c.NumGates())
	}
	for _, id := range c.LogicGates() {
		if delays[id] <= 0 {
			return nil, fmt.Errorf("logicsim: gate %d has non-positive delay", id)
		}
	}
	return &TimingSim{c: c, delays: delays, state: make([]bool, c.NumGates())}, nil
}

// settle computes the steady state for a vector (zero-delay evaluation).
func (ts *TimingSim) settle(vec []bool) {
	for i, id := range ts.c.Inputs {
		ts.state[id] = vec[i]
	}
	for _, id := range ts.c.TopoOrder() {
		g := &ts.c.Gates[id]
		if g.Type == circuit.Input {
			continue
		}
		in := make([]bool, len(g.Fanin))
		for i, f := range g.Fanin {
			in[i] = ts.state[f]
		}
		ts.state[id] = g.Type.Eval(in)
	}
}

type timedEvent struct {
	time  float64
	seq   int // tie-break for determinism
	gate  int
	value bool
}

type eventQueue []timedEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(timedEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// Run settles the circuit at `from`, applies `to` at t = 0, and returns
// every gate output transition in time order (transport-delay semantics:
// every input change that flips a gate's instantaneous function schedules
// an output event one gate delay later; hazard pulses are reported).
func (ts *TimingSim) Run(from, to []bool) (events []SwitchEvent, err error) {
	defer func() {
		if r := recover(); r != nil {
			events, err = nil, fmt.Errorf("logicsim: timing simulation panicked: %v", r)
		}
	}()
	c := ts.c
	if len(from) != len(c.Inputs) || len(to) != len(c.Inputs) {
		return nil, fmt.Errorf("logicsim: vector width %d/%d, want %d", len(from), len(to), len(c.Inputs))
	}
	ts.settle(from)

	var q eventQueue
	seq := 0
	push := func(t float64, gate int, v bool) {
		heap.Push(&q, timedEvent{time: t, seq: seq, gate: gate, value: v})
		seq++
	}
	// Input changes at t = 0.
	for i, id := range c.Inputs {
		if ts.state[id] != to[i] {
			push(0, id, to[i])
		}
	}

	evalGate := func(id int) bool {
		g := &c.Gates[id]
		in := make([]bool, len(g.Fanin))
		for i, f := range g.Fanin {
			in[i] = ts.state[f]
		}
		return g.Type.Eval(in)
	}

	guard := 64 * c.NumGates() * (len(c.Inputs) + 1) // oscillation guard (combinational DAGs cannot oscillate, but stay safe)
	for q.Len() > 0 && len(events) < guard {
		ev := heap.Pop(&q).(timedEvent)
		if ts.state[ev.gate] == ev.value {
			continue // superseded by an earlier glitch resolution
		}
		ts.state[ev.gate] = ev.value
		if c.Gates[ev.gate].Type != circuit.Input {
			events = append(events, SwitchEvent{Gate: ev.gate, Time: ev.time})
		}
		for _, f := range c.Gates[ev.gate].Fanout {
			nv := evalGate(f)
			// Schedule the recomputed value; if it equals the current
			// output this cancels a pending opposite event on arrival.
			push(ev.time+ts.delays[f], f, nv)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events, nil
}

// State returns the settled value of a gate after the last Run.
func (ts *TimingSim) State(id int) bool { return ts.state[id] }
