// Package report serialises the experiment results to CSV and Markdown,
// so Table 1 regenerations and the study outputs can be archived, diffed
// between runs, and dropped into documents. All emitters are deterministic
// for identical inputs.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"iddqsyn/internal/experiments"
)

// Table1CSV writes Table 1 rows as CSV with a header line.
func Table1CSV(w io.Writer, rows []experiments.Table1Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"circuit", "gates", "modules",
		"area_standard", "area_evolution", "area_overhead_pct",
		"delay_standard_pct", "delay_evolution_pct",
		"test_standard_pct", "test_evolution_pct",
		"cost_standard", "cost_evolution",
		"generations", "evaluations",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Circuit,
			strconv.Itoa(r.Gates),
			strconv.Itoa(r.Modules),
			fmtF(r.AreaStandard), fmtF(r.AreaEvolution), fmtF(r.AreaOverhead),
			fmtF(r.DelayStandard), fmtF(r.DelayEvolution),
			fmtF(r.TestStandard), fmtF(r.TestEvolution),
			fmtF(r.CostStandard), fmtF(r.CostEvolution),
			strconv.Itoa(r.Generations), strconv.Itoa(r.Evaluations),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// Table1Markdown renders Table 1 rows as a GitHub-flavoured Markdown
// table mirroring the paper's layout.
func Table1Markdown(w io.Writer, rows []experiments.Table1Row) error {
	var sb strings.Builder
	sb.WriteString("| circuit | gates | modules | area (std) | area (evo) | overhead | delay std/evo | test std/evo |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s | %d | %d | %.3e | %.3e | %.1f%% | %.2f%% / %.2f%% | %.2f%% / %.2f%% |\n",
			r.Circuit, r.Gates, r.Modules,
			r.AreaStandard, r.AreaEvolution, r.AreaOverhead,
			r.DelayStandard, r.DelayEvolution,
			r.TestStandard, r.TestEvolution)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// OptimizersCSV writes the optimizer-comparison rows as CSV.
func OptimizersCSV(w io.Writer, rows []experiments.OptimizerRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "final_cost", "evaluations", "modules", "feasible"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Algorithm, fmtF(r.FinalCost), strconv.Itoa(r.Evaluations),
			strconv.Itoa(r.Modules), strconv.FormatBool(r.Feasible),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// YieldCSV writes a threshold sweep as CSV.
func YieldCSV(w io.Writer, points []experiments.YieldPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"threshold_A", "escape", "overkill"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{fmtF(p.Threshold), fmtF(p.Escape), fmtF(p.Overkill)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
