package report

import (
	"encoding/csv"
	"strings"
	"testing"

	"iddqsyn/internal/experiments"
)

func sampleRows() []experiments.Table1Row {
	return []experiments.Table1Row{
		{
			Circuit: "c1908", Gates: 880, Modules: 5,
			AreaStandard: 2.604e6, AreaEvolution: 2.205e6, AreaOverhead: 18.1,
			DelayStandard: 2.19, DelayEvolution: 0.55,
			TestStandard: 2.77, TestEvolution: 1.09,
			CostStandard: 2385.47, CostEvolution: 746.99,
			Generations: 250, Evaluations: 12008,
		},
		{
			Circuit: "c6288", Gates: 1408, Modules: 8,
			AreaStandard: 3.982e6, AreaEvolution: 3.999e6, AreaOverhead: -0.4,
			DelayStandard: 2.86, DelayEvolution: 2.06,
			TestStandard: 3.08, TestEvolution: 2.31,
			CostStandard: 3090.63, CostEvolution: 2286.88,
			Generations: 250, Evaluations: 12008,
		},
	}
}

func TestTable1CSV(t *testing.T) {
	var sb strings.Builder
	if err := Table1CSV(&sb, sampleRows()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, sb.String())
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want header + 2", len(recs))
	}
	if recs[0][0] != "circuit" || len(recs[0]) != 14 {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][0] != "c1908" || recs[2][0] != "c6288" {
		t.Errorf("rows out of order: %v / %v", recs[1][0], recs[2][0])
	}
	if recs[1][5] != "18.1" {
		t.Errorf("overhead field = %q", recs[1][5])
	}
}

func TestTable1Markdown(t *testing.T) {
	var sb strings.Builder
	if err := Table1Markdown(&sb, sampleRows()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"| circuit |", "| c1908 |", "18.1%", "| c6288 |", "-0.4%"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Every row has the same column count.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	cols := strings.Count(lines[0], "|")
	for i, l := range lines {
		if strings.Count(l, "|") != cols {
			t.Errorf("line %d has wrong column count: %s", i, l)
		}
	}
}

func TestOptimizersCSV(t *testing.T) {
	rows := []experiments.OptimizerRow{
		{Algorithm: "evolution", FinalCost: 875.3, Evaluations: 7208, Modules: 8, Feasible: true},
		{Algorithm: "hill-climb", FinalCost: 725.5, Evaluations: 5782, Modules: 10, Feasible: true},
	}
	var sb strings.Builder
	if err := OptimizersCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[1][0] != "evolution" || recs[2][4] != "true" {
		t.Errorf("records = %v", recs)
	}
}

func TestYieldCSV(t *testing.T) {
	points := []experiments.YieldPoint{
		{Threshold: 1e-7, Escape: 0.0125, Overkill: 0.0065},
		{Threshold: 1e-6, Escape: 0.0125, Overkill: 0},
	}
	var sb strings.Builder
	if err := YieldCSV(&sb, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[1][0] != "1e-07" {
		t.Errorf("records = %v", recs)
	}
}
