// Package celllib models the target technology cell library. The paper's
// estimators (§3) are evaluated "using parameterized electrical level
// information of the target technology": every cell is characterised by
// its peak transient supply current, worst-case quiescent (leakage)
// current, capacitances, an equivalent discharge resistance and a nominal
// delay. The default library approximates a 1 µm CMOS standard-cell
// technology of the paper's era.
package celllib

import (
	"fmt"
	"sort"

	"iddqsyn/internal/circuit"
)

// Cell is the electrical-level characterisation of one library cell.
// All values are in SI units (seconds, amperes, farads, ohms) except Area,
// which uses the paper's technology-dependent abstract area units.
type Cell struct {
	Name     string
	Function circuit.GateType
	MaxFanin int // largest fanin this cell variant supports

	Area           float64 // layout area, abstract units
	Delay          float64 // intrinsic propagation delay D(g), s
	DelayPerFanout float64 // incremental delay per fanout load, s

	PeakCurrent float64 // maximum transient iDD while switching, A
	LeakBase    float64 // quiescent current floor, A
	LeakPerIn   float64 // additional leakage per logic-high input, A

	Cin  float64 // input capacitance per pin, F
	Cout float64 // drain/output parasitic at the virtual rail, F
	Rg   float64 // equivalent ON resistance of the discharge network, Ω
}

// LeakageMax returns the worst-case quiescent current of the cell — the
// value entering the discriminability constraint IDDQ,nd (§2).
func (c *Cell) LeakageMax() float64 {
	return c.LeakBase + float64(c.MaxFanin)*c.LeakPerIn
}

// LeakageForState returns the quiescent current for a concrete input
// state. Leakage grows with the number of logic-high inputs (more devices
// biased in weak inversion across the OFF stack), a standard first-order
// state-dependent model.
func (c *Cell) LeakageForState(inputs []bool) float64 {
	ones := 0
	for _, v := range inputs {
		if v {
			ones++
		}
	}
	return c.LeakBase + float64(ones)*c.LeakPerIn
}

// Library is a set of cells indexed by logic function. For each function
// the library may hold several fanin variants (e.g. NAND2, NAND3, NAND4);
// lookup picks the smallest variant accommodating the requested fanin.
type Library struct {
	Name  string
	VDD   float64 // supply voltage, V
	cells map[circuit.GateType][]*Cell
}

// New creates an empty library with the given name and supply voltage.
func New(name string, vdd float64) *Library {
	return &Library{Name: name, VDD: vdd, cells: make(map[circuit.GateType][]*Cell)}
}

// Add registers a cell. Variants for the same function are kept sorted by
// MaxFanin. Adding a duplicate (function, MaxFanin) pair is an error.
func (l *Library) Add(c *Cell) error {
	if c.MaxFanin <= 0 {
		return fmt.Errorf("celllib: cell %q: MaxFanin must be positive", c.Name)
	}
	if c.PeakCurrent <= 0 || c.Delay <= 0 || c.Rg <= 0 || c.Area <= 0 {
		return fmt.Errorf("celllib: cell %q: electrical parameters must be positive", c.Name)
	}
	vs := l.cells[c.Function]
	for _, v := range vs {
		if v.MaxFanin == c.MaxFanin {
			return fmt.Errorf("celllib: duplicate cell for %v fanin %d", c.Function, c.MaxFanin)
		}
	}
	vs = append(vs, c)
	sort.Slice(vs, func(i, j int) bool { return vs[i].MaxFanin < vs[j].MaxFanin })
	l.cells[c.Function] = vs
	return nil
}

// CellFor returns the smallest cell variant implementing typ with at least
// fanin inputs.
func (l *Library) CellFor(typ circuit.GateType, fanin int) (*Cell, error) {
	for _, v := range l.cells[typ] {
		if v.MaxFanin >= fanin {
			return v, nil
		}
	}
	return nil, fmt.Errorf("celllib %q: no cell for %v with fanin %d", l.Name, typ, fanin)
}

// Cells returns all cells in the library in deterministic order.
func (l *Library) Cells() []*Cell {
	var out []*Cell
	var types []circuit.GateType
	for t := range l.cells {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		out = append(out, l.cells[t]...)
	}
	return out
}

// Default returns the built-in 1 µm CMOS-style library. Parameter ranges
// follow the figures quoted in the paper and its references: per-gate peak
// transient currents of a few hundred µA, worst-case quiescent currents of
// one to a few hundred pA per gate (the paper notes that "non defective
// IDDQ currents of large circuits can be larger than 1 µA" — thousands of
// gates at this leakage cross the 1 µA threshold, which is exactly what
// forces the partitioning), nanosecond gate delays, VDD = 5 V.
func Default() *Library {
	l := New("generic-1um-cmos", 5.0)
	// mustAdd registers one static built-in cell; the table below is
	// compile-time data, so a registration failure is a programming error
	// and panics per the project's panic policy.
	mustAdd := func(name string, fn circuit.GateType, fanin int, area, delayNS, peakUA, leakPA float64) {
		c := &Cell{
			Name:           name,
			Function:       fn,
			MaxFanin:       fanin,
			Area:           area,
			Delay:          delayNS * 1e-9,
			DelayPerFanout: 0.15e-9,
			PeakCurrent:    peakUA * 1e-6,
			LeakBase:       leakPA * 1e-12,
			LeakPerIn:      0.4 * leakPA * 1e-12 / float64(fanin),
			Cin:            8e-15 * float64(fanin),
			Cout:           20e-15 + 6e-15*float64(fanin),
			// The equivalent discharge resistance is tied to the peak
			// switching current (Rg ≈ VDD / îDD) so the §3.2 delay model
			// sees a rail perturbation consistent with the §3.1 sizing —
			// this is what keeps the delay impact of a r*-sized sensor
			// "small", as the paper observes.
			Rg: 5.0 / (peakUA * 1e-6),
		}
		if err := l.Add(c); err != nil {
			panic(err) // built-in table is static; a failure is a programming error
		}
	}
	mustAdd("BUF1", circuit.Buf, 1, 2, 1.0, 150, 84)
	mustAdd("INV1", circuit.Not, 1, 1, 0.5, 180, 70)
	mustAdd("NAND2", circuit.Nand, 2, 2, 0.8, 260, 154)
	mustAdd("NAND3", circuit.Nand, 3, 3, 1.0, 320, 210)
	mustAdd("NAND4", circuit.Nand, 4, 4, 1.2, 380, 266)
	mustAdd("NAND5", circuit.Nand, 5, 5, 1.5, 430, 322)
	mustAdd("NAND8", circuit.Nand, 8, 7, 1.9, 520, 448)
	mustAdd("NAND9", circuit.Nand, 9, 8, 2.1, 560, 504)
	mustAdd("NOR2", circuit.Nor, 2, 2, 0.9, 270, 168)
	mustAdd("NOR3", circuit.Nor, 3, 3, 1.2, 340, 224)
	mustAdd("NOR4", circuit.Nor, 4, 4, 1.4, 400, 280)
	mustAdd("NOR5", circuit.Nor, 5, 5, 1.7, 450, 336)
	mustAdd("AND2", circuit.And, 2, 3, 1.1, 300, 196)
	mustAdd("AND3", circuit.And, 3, 4, 1.3, 360, 252)
	mustAdd("AND4", circuit.And, 4, 5, 1.5, 420, 308)
	mustAdd("AND5", circuit.And, 5, 6, 1.8, 470, 364)
	mustAdd("AND8", circuit.And, 8, 8, 2.2, 560, 476)
	mustAdd("AND9", circuit.And, 9, 9, 2.4, 600, 532)
	mustAdd("OR2", circuit.Or, 2, 3, 1.2, 310, 210)
	mustAdd("OR3", circuit.Or, 3, 4, 1.4, 370, 266)
	mustAdd("OR4", circuit.Or, 4, 5, 1.6, 430, 322)
	mustAdd("OR5", circuit.Or, 5, 6, 1.9, 480, 378)
	mustAdd("XOR2", circuit.Xor, 2, 4, 1.6, 420, 336)
	mustAdd("XOR3", circuit.Xor, 3, 6, 2.1, 520, 448)
	mustAdd("XNOR2", circuit.Xnor, 2, 4, 1.6, 420, 336)
	mustAdd("XNOR3", circuit.Xnor, 3, 6, 2.1, 520, 448)
	return l
}

// Annotated binds a circuit to a library: per-gate electrical data in
// dense arrays indexed by gate ID. Primary inputs have zero entries
// (they draw no supply current).
type Annotated struct {
	Circuit *circuit.Circuit
	Library *Library

	Cell    []*Cell   // cell chosen for each gate (nil for inputs)
	Peak    []float64 // peak transient current per gate, A
	LeakMax []float64 // worst-case quiescent current per gate, A
	Delay   []float64 // loaded nominal delay D(g), s
	Cout    []float64 // parasitic at the virtual rail per gate, F
	Rg      []float64 // equivalent discharge resistance per gate, Ω
	Area    []float64 // cell area per gate
}

// Annotate maps every logic gate of c onto a library cell and extracts the
// per-gate electrical quantities used by the estimators.
func Annotate(c *circuit.Circuit, l *Library) (*Annotated, error) {
	n := c.NumGates()
	a := &Annotated{
		Circuit: c,
		Library: l,
		Cell:    make([]*Cell, n),
		Peak:    make([]float64, n),
		LeakMax: make([]float64, n),
		Delay:   make([]float64, n),
		Cout:    make([]float64, n),
		Rg:      make([]float64, n),
		Area:    make([]float64, n),
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == circuit.Input {
			continue
		}
		cell, err := l.CellFor(g.Type, len(g.Fanin))
		if err != nil {
			return nil, fmt.Errorf("celllib: mapping gate %q: %w", g.Name, err)
		}
		a.Cell[i] = cell
		a.Peak[i] = cell.PeakCurrent
		a.LeakMax[i] = cell.LeakageMax()
		a.Delay[i] = cell.Delay + float64(len(g.Fanout))*cell.DelayPerFanout
		a.Cout[i] = cell.Cout
		a.Rg[i] = cell.Rg
		a.Area[i] = cell.Area
	}
	return a, nil
}

// TotalLeakageMax returns the worst-case fault-free IDDQ of a set of gates
// — IDDQ,nd of a module in the discriminability constraint.
func (a *Annotated) TotalLeakageMax(gates []int) float64 {
	var sum float64
	for _, g := range gates {
		sum += a.LeakMax[g]
	}
	return sum
}

// TotalArea returns the summed cell area of a set of gates.
func (a *Annotated) TotalArea(gates []int) float64 {
	var sum float64
	for _, g := range gates {
		sum += a.Area[g]
	}
	return sum
}
