package celllib

import (
	"strings"
	"testing"
	"testing/quick"

	"iddqsyn/internal/circuit"
)

func mustC17(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("c17")
	for _, in := range []string{"I1", "I2", "I3", "I4", "I5"} {
		b.AddInput(in)
	}
	b.AddGate("g1", circuit.Nand, "I1", "I3")
	b.AddGate("g2", circuit.Nand, "I3", "I4")
	b.AddGate("g3", circuit.Nand, "I2", "g2")
	b.AddGate("g4", circuit.Nand, "g2", "I5")
	b.AddGate("g5", circuit.Nand, "g1", "g3")
	b.AddGate("g6", circuit.Nand, "g3", "g4")
	b.MarkOutput("g5").MarkOutput("g6")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultLibraryComplete(t *testing.T) {
	l := Default()
	// Every gate type must be mappable at fanins 1/2..5.
	for _, typ := range []circuit.GateType{circuit.Buf, circuit.Not} {
		if _, err := l.CellFor(typ, 1); err != nil {
			t.Errorf("CellFor(%v,1): %v", typ, err)
		}
	}
	for _, typ := range []circuit.GateType{circuit.And, circuit.Nand, circuit.Or, circuit.Nor} {
		for fanin := 2; fanin <= 5; fanin++ {
			if _, err := l.CellFor(typ, fanin); err != nil {
				t.Errorf("CellFor(%v,%d): %v", typ, fanin, err)
			}
		}
	}
	for _, typ := range []circuit.GateType{circuit.Xor, circuit.Xnor} {
		for fanin := 2; fanin <= 3; fanin++ {
			if _, err := l.CellFor(typ, fanin); err != nil {
				t.Errorf("CellFor(%v,%d): %v", typ, fanin, err)
			}
		}
	}
}

func TestCellForPicksSmallestVariant(t *testing.T) {
	l := Default()
	c2, err := l.CellFor(circuit.Nand, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Name != "NAND2" {
		t.Errorf("CellFor(Nand,2) = %s, want NAND2", c2.Name)
	}
	c3, err := l.CellFor(circuit.Nand, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Name != "NAND3" {
		t.Errorf("CellFor(Nand,3) = %s, want NAND3", c3.Name)
	}
}

func TestCellForFailsForHugeFanin(t *testing.T) {
	l := Default()
	if _, err := l.CellFor(circuit.Nand, 40); err == nil {
		t.Error("want error for fanin 40")
	}
}

func TestAddValidation(t *testing.T) {
	l := New("t", 5)
	bad := &Cell{Name: "x", Function: circuit.Nand, MaxFanin: 0, Area: 1, Delay: 1, PeakCurrent: 1, Rg: 1}
	if err := l.Add(bad); err == nil {
		t.Error("want error for MaxFanin 0")
	}
	bad2 := &Cell{Name: "x", Function: circuit.Nand, MaxFanin: 2, Area: 0, Delay: 1, PeakCurrent: 1, Rg: 1}
	if err := l.Add(bad2); err == nil {
		t.Error("want error for zero area")
	}
	good := &Cell{Name: "x", Function: circuit.Nand, MaxFanin: 2, Area: 1, Delay: 1, PeakCurrent: 1, Rg: 1}
	if err := l.Add(good); err != nil {
		t.Errorf("Add(good): %v", err)
	}
	dup := &Cell{Name: "y", Function: circuit.Nand, MaxFanin: 2, Area: 1, Delay: 1, PeakCurrent: 1, Rg: 1}
	if err := l.Add(dup); err == nil {
		t.Error("want error for duplicate (function,fanin)")
	}
}

func TestLeakageModel(t *testing.T) {
	c := &Cell{Name: "NAND2", Function: circuit.Nand, MaxFanin: 2,
		LeakBase: 10e-12, LeakPerIn: 2e-12}
	if got, want := c.LeakageMax(), 14e-12; !approx(got, want, 1e-18) {
		t.Errorf("LeakageMax = %g, want %g", got, want)
	}
	if got := c.LeakageForState([]bool{false, false}); !approx(got, 10e-12, 1e-18) {
		t.Errorf("leak(00) = %g", got)
	}
	if got := c.LeakageForState([]bool{true, false}); !approx(got, 12e-12, 1e-18) {
		t.Errorf("leak(10) = %g", got)
	}
	if got := c.LeakageForState([]bool{true, true}); !approx(got, 14e-12, 1e-18) {
		t.Errorf("leak(11) = %g", got)
	}
}

// Property: for any input state, state-dependent leakage never exceeds the
// worst case used by the discriminability constraint.
func TestLeakageForStateBounded(t *testing.T) {
	prop := func(a, b, c, d bool) bool {
		cell := &Cell{Function: circuit.Nand, MaxFanin: 4, LeakBase: 30e-12, LeakPerIn: 3e-12}
		return cell.LeakageForState([]bool{a, b, c, d}) <= cell.LeakageMax()+1e-20
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAnnotate(t *testing.T) {
	c := mustC17(t)
	l := Default()
	a, err := Annotate(c, l)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	for _, id := range c.Inputs {
		if a.Cell[id] != nil || a.Peak[id] != 0 {
			t.Errorf("input gate %d should have no electrical data", id)
		}
	}
	for _, id := range c.LogicGates() {
		if a.Cell[id] == nil {
			t.Fatalf("gate %d unmapped", id)
		}
		if a.Cell[id].Name != "NAND2" {
			t.Errorf("gate %d mapped to %s, want NAND2", id, a.Cell[id].Name)
		}
		if a.Peak[id] <= 0 || a.LeakMax[id] <= 0 || a.Delay[id] <= 0 || a.Rg[id] <= 0 {
			t.Errorf("gate %d has non-positive electrical data", id)
		}
	}
	// g3 has two fanouts, g5 has none beyond PO: loaded delay must differ.
	g3, _ := c.GateByName("g3")
	g5, _ := c.GateByName("g5")
	if a.Delay[g3.ID] <= a.Delay[g5.ID] {
		t.Errorf("loaded delay of g3 (%g) should exceed g5 (%g)", a.Delay[g3.ID], a.Delay[g5.ID])
	}
}

func TestAnnotateUnmappable(t *testing.T) {
	b := circuit.NewBuilder("wide")
	var fan []string
	for i := 0; i < 12; i++ {
		n := "i" + string(rune('a'+i))
		b.AddInput(n)
		fan = append(fan, n)
	}
	b.AddGate("g", circuit.Xor, fan...)
	b.MarkOutput("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Annotate(c, Default()); err == nil {
		t.Error("want mapping error for 12-input XOR")
	}
}

func TestTotals(t *testing.T) {
	c := mustC17(t)
	a, err := Annotate(c, Default())
	if err != nil {
		t.Fatal(err)
	}
	gates := c.LogicGates()
	leak := a.TotalLeakageMax(gates)
	area := a.TotalArea(gates)
	nand2, _ := Default().CellFor(circuit.Nand, 2)
	if !approx(leak, 6*nand2.LeakageMax(), 1e-18) {
		t.Errorf("TotalLeakageMax = %g, want %g", leak, 6*nand2.LeakageMax())
	}
	if !approx(area, 6*nand2.Area, 1e-9) {
		t.Errorf("TotalArea = %g, want %g", area, 6*nand2.Area)
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	l := Default()
	var sb strings.Builder
	if err := WriteLibrary(&sb, l); err != nil {
		t.Fatalf("WriteLibrary: %v", err)
	}
	l2, err := ReadLibrary(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadLibrary: %v\n%s", err, sb.String())
	}
	if l2.Name != l.Name || l2.VDD != l.VDD {
		t.Errorf("header: %s/%g vs %s/%g", l2.Name, l2.VDD, l.Name, l.VDD)
	}
	a, b := l.Cells(), l2.Cells()
	if len(a) != len(b) {
		t.Fatalf("cell count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Errorf("cell %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReadLibraryErrors(t *testing.T) {
	cases := map[string]string{
		"no header":      "cell X NAND fanin 2 area 1 delay 1 peak 1 rg 1\n",
		"bad vdd":        "library l vdd five\n",
		"bad directive":  "library l vdd 5\nwibble\n",
		"bad function":   "library l vdd 5\ncell X MUX fanin 2 area 1 delay 1 peak 1 rg 1\n",
		"input function": "library l vdd 5\ncell X INPUT fanin 1 area 1 delay 1 peak 1 rg 1\n",
		"odd kv":         "library l vdd 5\ncell X NAND fanin 2 area\n",
		"bad value":      "library l vdd 5\ncell X NAND fanin 2 area one delay 1 peak 1 rg 1\n",
		"unknown attr":   "library l vdd 5\ncell X NAND fanin 2 weight 3\n",
		"bad fanin":      "library l vdd 5\ncell X NAND fanin two area 1 delay 1 peak 1 rg 1\n",
		"empty":          "",
		"short header":   "library l\n",
	}
	for name, src := range cases {
		if _, err := ReadLibrary(strings.NewReader(src)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
