package celllib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"iddqsyn/internal/circuit"
)

// The text library format is line-oriented:
//
//	# comment
//	library <name> vdd <volts>
//	cell <name> <FUNCTION> fanin <n> area <a> delay <s> dpf <s> peak <A> leakbase <A> leakperin <A> cin <F> cout <F> rg <ohm>
//
// It exists so cmd tools can load a custom technology instead of the
// built-in Default library.

// WriteLibrary serialises l in the text library format.
func WriteLibrary(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# iddqsyn cell library\n")
	fmt.Fprintf(bw, "library %s vdd %g\n", l.Name, l.VDD)
	for _, c := range l.Cells() {
		fmt.Fprintf(bw, "cell %s %s fanin %d area %g delay %g dpf %g peak %g leakbase %g leakperin %g cin %g cout %g rg %g\n",
			c.Name, c.Function, c.MaxFanin, c.Area, c.Delay, c.DelayPerFanout,
			c.PeakCurrent, c.LeakBase, c.LeakPerIn, c.Cin, c.Cout, c.Rg)
	}
	return bw.Flush()
}

// ReadLibrary parses the text library format.
func ReadLibrary(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	var lib *Library
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "library":
			if len(fields) != 4 || fields[2] != "vdd" {
				return nil, fmt.Errorf("celllib: line %d: want 'library <name> vdd <volts>'", lineno)
			}
			vdd, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("celllib: line %d: bad vdd: %w", lineno, err)
			}
			lib = New(fields[1], vdd)
		case "cell":
			if lib == nil {
				return nil, fmt.Errorf("celllib: line %d: cell before library header", lineno)
			}
			c, err := parseCellLine(fields)
			if err != nil {
				return nil, fmt.Errorf("celllib: line %d: %w", lineno, err)
			}
			if err := lib.Add(c); err != nil {
				return nil, fmt.Errorf("celllib: line %d: %w", lineno, err)
			}
		default:
			return nil, fmt.Errorf("celllib: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lib == nil {
		return nil, fmt.Errorf("celllib: no library header")
	}
	return lib, nil
}

func parseCellLine(fields []string) (*Cell, error) {
	if len(fields) < 3 {
		return nil, fmt.Errorf("truncated cell line")
	}
	fn, ok := circuit.ParseGateType(fields[2])
	if !ok || fn == circuit.Input {
		return nil, fmt.Errorf("bad cell function %q", fields[2])
	}
	c := &Cell{Name: fields[1], Function: fn}
	kv := fields[3:]
	if len(kv)%2 != 0 {
		return nil, fmt.Errorf("odd key/value list")
	}
	for i := 0; i < len(kv); i += 2 {
		key, val := kv[i], kv[i+1]
		if key == "fanin" {
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad fanin %q", val)
			}
			c.MaxFanin = n
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value for %s: %q", key, val)
		}
		switch key {
		case "area":
			c.Area = f
		case "delay":
			c.Delay = f
		case "dpf":
			c.DelayPerFanout = f
		case "peak":
			c.PeakCurrent = f
		case "leakbase":
			c.LeakBase = f
		case "leakperin":
			c.LeakPerIn = f
		case "cin":
			c.Cin = f
		case "cout":
			c.Cout = f
		case "rg":
			c.Rg = f
		default:
			return nil, fmt.Errorf("unknown cell attribute %q", key)
		}
	}
	return c, nil
}
