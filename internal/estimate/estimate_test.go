package estimate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"errors"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/chaos"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/electrical"
)

func annotatedC17(t *testing.T) *celllib.Annotated {
	t.Helper()
	a, err := celllib.Annotate(circuits.C17(), celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func gid(t *testing.T, c *circuit.Circuit, name string) int {
	t.Helper()
	g, ok := c.GateByName(name)
	if !ok {
		t.Fatalf("gate %s missing", name)
	}
	return g.ID
}

func TestTransitionTimesC17(t *testing.T) {
	c := circuits.C17()
	ts := TransitionTimes(c)
	// Inputs transition only at t=0.
	for _, id := range c.Inputs {
		if got := ts.Times(id); len(got) != 1 || got[0] != 0 {
			t.Errorf("input %s times = %v, want [0]", c.Gates[id].Name, got)
		}
	}
	// g1, g2 at t=1; g3, g4 at t=2; g5 at {2,3}; g6 at {2,3}.
	want := map[string][]int{
		"g1": {1}, "g2": {1}, "g3": {2}, "g4": {2}, "g5": {2, 3}, "g6": {3},
	}
	// g5 = NAND(g1, g3): paths I1->g1->g5 (len 2) and I*->g2->g3->g5 (3),
	// also I2->g3->g5 (2). g6 = NAND(g3, g4): I2->g3->g6 (2)? g3 inputs:
	// I2 (len 1) and g2 (len 2), so T(g3) = {2, 3}? No: T(g3) =
	// (T(I2)+1) ∪ (T(g2)+1) = {1} ∪ {2} = {1,2}.
	_ = want
	g3 := gid(t, c, "g3")
	if got := ts.Times(g3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("T(g3) = %v, want [1 2]", got)
	}
	g5 := gid(t, c, "g5")
	// T(g5) = (T(g1)+1) ∪ (T(g3)+1) = {2} ∪ {2,3} = {2,3}.
	if got := ts.Times(g5); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("T(g5) = %v, want [2 3]", got)
	}
	if ts.NumTimes(g5) != 2 {
		t.Errorf("NumTimes(g5) = %d, want 2", ts.NumTimes(g5))
	}
	if !ts.Has(g5, 3) || ts.Has(g5, 1) || ts.Has(g5, -1) || ts.Has(g5, 99) {
		t.Error("Has() misbehaves")
	}
}

func TestTransitionTimesMatchLevelsUpperBound(t *testing.T) {
	// Every gate's latest transition time equals its level (longest path),
	// and its earliest is at least 1 for logic gates.
	c := circuits.MustISCAS85Like("c432")
	ts := TransitionTimes(c)
	lv := c.Levels()
	for _, g := range c.LogicGates() {
		times := ts.Times(g)
		if len(times) == 0 {
			t.Fatalf("gate %d has no transition times", g)
		}
		if times[len(times)-1] != lv[g] {
			t.Errorf("gate %d latest time %d != level %d", g, times[len(times)-1], lv[g])
		}
		if times[0] < 1 {
			t.Errorf("gate %d has transition time %d < 1", g, times[0])
		}
	}
}

func TestActivityProfileC17(t *testing.T) {
	c := circuits.C17()
	ts := TransitionTimes(c)
	gates := c.LogicGates()
	prof := ts.ActivityProfile(gates)
	// T(g1)=T(g2)={1}; T(g3)={1,2} (I2 path and g2 path);
	// T(g4)={1,2} (I5 path and g2 path); T(g5)=T(g6)={2,3}.
	// n(1): g1,g2,g3,g4 = 4. n(2): g3,g4,g5,g6 = 4. n(3): g5,g6 = 2.
	want := []int{0, 4, 4, 2}
	if len(prof) != len(want) {
		t.Fatalf("profile length %d, want %d", len(prof), len(want))
	}
	for i := range want {
		if prof[i] != want[i] {
			t.Errorf("n(%d) = %d, want %d (profile %v)", i, prof[i], want[i], prof)
		}
	}
}

func TestMaxCurrentC17(t *testing.T) {
	a := annotatedC17(t)
	ts := TransitionTimes(a.Circuit)
	gates := a.Circuit.LogicGates()
	// All gates are NAND2 with equal peak: max is at t=2 with 4 gates.
	peak := a.Peak[gates[0]]
	got := ts.MaxCurrent(a, gates)
	if !approx(got, 4*peak, 1e-12) {
		t.Errorf("MaxCurrent = %g, want %g (4 NAND2 peaks)", got, 4*peak)
	}
	// A single gate's module has its own peak.
	if got := ts.MaxCurrent(a, gates[:1]); !approx(got, peak, 1e-12) {
		t.Errorf("single-gate MaxCurrent = %g, want %g", got, peak)
	}
	// Empty group draws nothing.
	if got := ts.MaxCurrent(a, nil); got != 0 {
		t.Errorf("empty MaxCurrent = %g", got)
	}
}

// Property: îDD,max of a union of groups never exceeds the sum and never
// falls below the max of the parts (subadditivity of the estimator).
func TestMaxCurrentSubadditive(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	ts := TransitionTimes(c)
	logic := c.LogicGates()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ga, gb []int
		for _, g := range logic {
			switch rng.Intn(3) {
			case 0:
				ga = append(ga, g)
			case 1:
				gb = append(gb, g)
			}
		}
		union := append(append([]int{}, ga...), gb...)
		iu := ts.MaxCurrent(a, union)
		ia := ts.MaxCurrent(a, ga)
		ib := ts.MaxCurrent(a, gb)
		max := ia
		if ib > max {
			max = ib
		}
		return iu <= ia+ib+1e-15 && iu >= max-1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvalModule(t *testing.T) {
	a := annotatedC17(t)
	e := New(a, DefaultParams())
	gates := a.Circuit.LogicGates()
	m := e.EvalModule(gates)
	if m.IDDMax <= 0 {
		t.Fatal("IDDMax must be positive")
	}
	if !approx(m.Rs, e.P.RailLimit/m.IDDMax, 1e-12) {
		t.Errorf("Rs = %g, want r*/iDDmax = %g", m.Rs, e.P.RailLimit/m.IDDMax)
	}
	if m.Cs <= e.P.CsSensor {
		t.Error("Cs must include the gate parasitics")
	}
	if !approx(m.Tau, m.Rs*m.Cs, 1e-20) {
		t.Error("Tau != Rs*Cs")
	}
	wantArea, err := electrical.SensorArea(e.P.AreaA0, e.P.AreaA1, m.Rs)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.SensorArea, wantArea, 1e-9) {
		t.Errorf("SensorArea = %g, want %g", m.SensorArea, wantArea)
	}
	if m.LeakND != a.TotalLeakageMax(gates) {
		t.Error("LeakND mismatch")
	}
	if m.Settle <= 0 {
		t.Error("settle time must be positive for a module with real current")
	}
	if m.Separation <= 0 {
		t.Error("separation of a 6-gate module must be positive")
	}
	if len(m.Activity) != e.TS.Depth()+1 {
		t.Error("activity profile length mismatch")
	}
}

func TestEvalModuleEmpty(t *testing.T) {
	a := annotatedC17(t)
	e := New(a, DefaultParams())
	m := e.EvalModule(nil)
	if m.IDDMax != 0 || m.Separation != 0 {
		t.Error("empty module should have zero estimates")
	}
	if m.Discriminability(1e-6) < 1e17 {
		t.Error("empty module discriminates perfectly")
	}
}

func TestDiscriminability(t *testing.T) {
	m := &Module{LeakND: 1e-7}
	if got := m.Discriminability(1e-6); !approx(got, 10, 1e-9) {
		t.Errorf("d = %g, want 10", got)
	}
}

func TestSeparationModuleCliqueVsSpread(t *testing.T) {
	a := annotatedC17(t)
	e := New(a, DefaultParams())
	c := a.Circuit
	// Tight cluster: g2 and its direct fanouts g3, g4.
	tight := []int{gid(t, c, "g2"), gid(t, c, "g3"), gid(t, c, "g4")}
	// Spread: g1, g4, g6 — g1 and g4 are far apart.
	spread := []int{gid(t, c, "g1"), gid(t, c, "g4"), gid(t, c, "g6")}
	st := e.SeparationModule(tight)
	ss := e.SeparationModule(spread)
	if st >= ss {
		t.Errorf("separation: tight %d should beat spread %d", st, ss)
	}
	// Hand values: tight pairs (g2,g3)=1, (g2,g4)=1, (g3,g4)=2 -> 4.
	if st != 4 {
		t.Errorf("S(tight) = %d, want 4", st)
	}
	if e.SeparationModule(tight[:1]) != 0 {
		t.Error("single-gate module has zero separation")
	}
}

func TestSeparationCapRho(t *testing.T) {
	// Two gates in disconnected halves must be forced to ρ.
	b := circuit.NewBuilder("two")
	b.AddInput("a").AddInput("b")
	b.AddGate("x", circuit.Not, "a")
	b.AddGate("y", circuit.Not, "b")
	b.MarkOutput("x").MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Rho = 7
	e := New(a, p)
	gates := c.LogicGates()
	if got := e.SeparationModule(gates); got != 7 {
		t.Errorf("disconnected pair separation = %d, want ρ = 7", got)
	}
}

func TestNominalDelayC17(t *testing.T) {
	a := annotatedC17(t)
	e := New(a, DefaultParams())
	// Longest path: 3 NAND2 stages; fanout loading makes gates differ, so
	// check against a direct computation.
	c := a.Circuit
	arrival := make([]float64, c.NumGates())
	var want float64
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input {
			continue
		}
		var in float64
		for _, f := range g.Fanin {
			if arrival[f] > in {
				in = arrival[f]
			}
		}
		arrival[id] = in + a.Delay[id]
		if arrival[id] > want {
			want = arrival[id]
		}
	}
	if !approx(e.NominalDelay(), want, 1e-15) {
		t.Errorf("NominalDelay = %g, want %g", e.NominalDelay(), want)
	}
}

func TestBICDelayExceedsNominal(t *testing.T) {
	a := annotatedC17(t)
	e := New(a, DefaultParams())
	c := a.Circuit
	gates := c.LogicGates()
	mods := []*Module{e.EvalModule(gates)}
	moduleOf := make([]int, c.NumGates())
	for _, g := range gates {
		moduleOf[g] = 0
	}
	dBIC := e.BICDelay(moduleOf, mods)
	if dBIC <= e.NominalDelay() {
		t.Errorf("D_BIC = %g must exceed D = %g", dBIC, e.NominalDelay())
	}
	ovh := e.DelayOverhead(dBIC)
	if ovh <= 0 || ovh > 1 {
		t.Errorf("delay overhead = %g, want small positive fraction", ovh)
	}
}

func TestFinerPartitionSmallerDegradation(t *testing.T) {
	// Splitting one module into two lowers each module's îDD,max, which
	// raises Rs (less sensor conductance needed)... but the activity per
	// module also halves. Verify at least that per-module currents drop.
	a := annotatedC17(t)
	e := New(a, DefaultParams())
	c := a.Circuit
	gates := c.LogicGates()
	whole := e.EvalModule(gates)
	left := e.EvalModule(gates[:3])
	right := e.EvalModule(gates[3:])
	if left.IDDMax >= whole.IDDMax && right.IDDMax >= whole.IDDMax {
		t.Error("splitting must reduce at least one module's current")
	}
	if left.Rs <= whole.Rs {
		t.Error("a smaller module affords a larger Rs")
	}
}

func TestTestTimeOverhead(t *testing.T) {
	a := annotatedC17(t)
	e := New(a, DefaultParams())
	gates := a.Circuit.LogicGates()
	mods := []*Module{e.EvalModule(gates)}
	moduleOf := make([]int, a.Circuit.NumGates())
	dBIC := e.BICDelay(moduleOf, mods)
	c4 := e.TestTimeOverhead(dBIC, mods)
	c2 := e.DelayOverhead(dBIC)
	if c4 <= c2 {
		t.Errorf("test-time overhead %g must exceed delay overhead %g (settling adds)", c4, c2)
	}
	// nil modules in the slice are tolerated.
	if got := e.TestTimeOverhead(dBIC, []*Module{nil, mods[0]}); !approx(got, c4, 1e-12) {
		t.Error("nil module changed the overhead")
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// evalPanics runs EvalModule and returns the recovered panic value (nil if
// none): the contract between the estimator's numeric guards and the
// optimizer worker pools that convert these panics into errors.
func evalPanics(e *Estimator, gates []int) (r any) {
	defer func() { r = recover() }()
	e.EvalModule(gates)
	return nil
}

// A chaos-poisoned estimate must never leave EvalModule as a number: the
// guards turn it into a panic whose value is an error wrapping both
// chaos-visible context and electrical.ErrNonFinite, so the worker pools
// can classify it after recovery.
func TestChaosPoisonedEstimatePanicsTyped(t *testing.T) {
	for _, site := range []string{chaos.SiteEstimateNaN, chaos.SiteEstimateInf} {
		t.Run(site, func(t *testing.T) {
			a := annotatedC17(t)
			e := New(a, DefaultParams())
			sched, err := chaos.ParseSchedule("seed=1,after=1,sites=" + site)
			if err != nil {
				t.Fatal(err)
			}
			e.SetChaos(chaos.New(sched, nil))
			r := evalPanics(e, a.Circuit.LogicGates())
			if r == nil {
				t.Fatal("poisoned estimate did not panic")
			}
			perr, ok := r.(error)
			if !ok {
				t.Fatalf("panic value %v (%T) is not an error", r, r)
			}
			if !errors.Is(perr, electrical.ErrNonFinite) {
				t.Errorf("panic error %v does not wrap electrical.ErrNonFinite", perr)
			}
			// A second evaluation is clean: the schedule was one-shot.
			if r := evalPanics(e, a.Circuit.LogicGates()); r != nil {
				t.Errorf("one-shot schedule injected twice: %v", r)
			}
		})
	}
}
