// Package estimate implements the paper's logic-level estimators (§3):
// the transition-time sets and maximum transient current of a gate group
// (§3.1), the nominal and BIC-degraded circuit delays on the unit-delay
// time grid (§3.2), the separation parameter of the interconnection cost
// (§3.3), and the test-application-time overhead (§3.4). These estimators
// trade accuracy for speed so the evolution algorithm can evaluate a large
// number of partitions: they are deliberately pessimistic (all gates at
// equal path depth are assumed to switch simultaneously) but computable in
// time linear in the circuit size.
package estimate

import (
	"math/bits"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
)

// bitset is a fixed-capacity set of small integers (transition times).
type bitset []uint64

func newBitset(capacity int) bitset {
	return make(bitset, (capacity+64)/64)
}

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }
func (b bitset) orShift1(src bitset) {
	// b |= src << 1, the "transition arrives one stage later" transfer.
	var carry uint64
	for i := range src {
		b[i] |= src[i]<<1 | carry
		carry = src[i] >> 63
	}
	if carry != 0 && len(b) > len(src) {
		b[len(src)] |= carry
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// TimeSets holds, for every gate g, the set of possible transition times
// {t₁ⁱ, ..., t_Lᵢⁱ} of §3.1: the lengths of all input→g paths on the
// unit-delay grid. A gate can switch only at times in its set, and the
// pessimistic simultaneity assumption is that all gates sharing a time
// actually do switch together.
type TimeSets struct {
	c     *circuit.Circuit
	depth int
	sets  []bitset
}

// TransitionTimes computes the transition-time sets of all gates by a
// single topological pass: T(input) = {0}, T(g) = ⋃_{f∈fanin(g)} T(f)+1.
func TransitionTimes(c *circuit.Circuit) *TimeSets {
	depth := c.Depth()
	ts := &TimeSets{c: c, depth: depth, sets: make([]bitset, c.NumGates())}
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		b := newBitset(depth + 1)
		if g.Type == circuit.Input {
			b.set(0)
		} else {
			for _, f := range g.Fanin {
				b.orShift1(ts.sets[f])
			}
		}
		ts.sets[id] = b
	}
	return ts
}

// Depth returns the time-grid extent (the circuit depth).
func (ts *TimeSets) Depth() int { return ts.depth }

// Has reports whether gate can have a transition at grid time t.
func (ts *TimeSets) Has(gate, t int) bool {
	if t < 0 || t > ts.depth {
		return false
	}
	return ts.sets[gate].has(t)
}

// Times returns the ascending list of possible transition times of gate.
func (ts *TimeSets) Times(gate int) []int {
	var out []int
	for t := 0; t <= ts.depth; t++ {
		if ts.sets[gate].has(t) {
			out = append(out, t)
		}
	}
	return out
}

// NumTimes returns |T(gate)|, the Lᵢ of §3.1.
func (ts *TimeSets) NumTimes(gate int) int { return ts.sets[gate].count() }

// ActivityProfile returns n(t) for a group of gates: the number of group
// members that can switch at each grid time t — the activity term of the
// §3.2 delay degradation model, and the profile whose current-weighted
// maximum is îDD,max.
func (ts *TimeSets) ActivityProfile(gates []int) []int {
	//lint:ignore hotalloc the profile is retained in the returned Module estimate, which the partition caches per module
	prof := make([]int, ts.depth+1)
	for _, g := range gates {
		b := ts.sets[g]
		for t := 0; t <= ts.depth; t++ {
			if b.has(t) {
				prof[t]++
			}
		}
	}
	return prof
}

// MaxCurrent returns the §3.1 upper bound on the maximum transient current
// of a gate group:
//
//	îDD,max = max_t Σ_{g : t ∈ T(g)} îDD,max(g)
//
// i.e. the worst grid instant, assuming every gate that can switch at that
// instant does and their peak currents add. The estimate is pessimistic
// (blocked paths are not analysed) but computable in one pass.
func (ts *TimeSets) MaxCurrent(a *celllib.Annotated, gates []int) float64 {
	return ts.maxCurrentScratch(a, gates, make([]float64, ts.depth+1))
}

// maxCurrentScratch is MaxCurrent against a caller-provided profile
// buffer of length depth+1 (any contents; it is zeroed here).
func (ts *TimeSets) maxCurrentScratch(a *celllib.Annotated, gates []int, prof []float64) float64 {
	prof = prof[:ts.depth+1]
	for t := range prof {
		prof[t] = 0
	}
	for _, g := range gates {
		b := ts.sets[g]
		peak := a.Peak[g]
		for t := 0; t <= ts.depth; t++ {
			if b.has(t) {
				prof[t] += peak
			}
		}
	}
	var max float64
	for _, v := range prof {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxActivityOver returns the largest group activity n(t) over the
// transition times of one gate — the worst simultaneity the gate can see
// while it is itself switching.
func (ts *TimeSets) MaxActivityOver(gate int, profile []int) int {
	b := ts.sets[gate]
	max := 0
	for t := 0; t <= ts.depth; t++ {
		if b.has(t) && profile[t] > max {
			max = profile[t]
		}
	}
	if max == 0 {
		max = 1
	}
	return max
}
