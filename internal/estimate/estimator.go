package estimate

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/chaos"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/electrical"
	"iddqsyn/internal/obs"
)

// Metric names recorded by an observed estimator (see SetObs). Module
// evaluation is the innermost hot path of every optimizer, so its call
// count and latency distribution are the primary throughput signal of a
// run.
const (
	MetricEvalModuleCalls   = "estimate.evalmodule.calls"
	MetricEvalModuleSeconds = "estimate.evalmodule.seconds"
)

// Params collects the technology- and policy-level constants of the
// estimators. Zero values are invalid; use DefaultParams as a base.
type Params struct {
	RailLimit float64 // r*: maximum virtual-rail perturbation, V (§3.1)
	AreaA0    float64 // sensor area model: detection-circuitry term (§3.1)
	AreaA1    float64 // sensor area model: sensing/bypass term coefficient
	CsSensor  float64 // intrinsic sensor capacitance at the virtual rail, F
	IDDQth    float64 // sensing threshold IDDQ,th, A (§2)
	Rho       int     // separation-parameter cap ρ (§3.3)
}

// DefaultParams returns the constants used throughout the experiments:
// a 200 mV rail limit (the paper quotes 100–300 mV), a 1 µA sensing
// threshold ("effective test of defects in CMOS typically requires
// IDDQ,th ≈ 1 µA"), and ρ = 4. The paper does not publish its ρ; 4 keeps
// the ρ-hop neighbourhoods — and with them the cost of evaluating S(M) —
// small even on the densest benchmark circuits while still separating
// tight clusters from scattered ones.
func DefaultParams() Params {
	return Params{
		RailLimit: 0.2,
		AreaA0:    1.0e4,
		AreaA1:    2.0e6, // area units · Ω: A1/Rs dominates for small Rs
		CsSensor:  150e-15,
		IDDQth:    1e-6,
		Rho:       4,
	}
}

// Estimator evaluates the per-module and global quantities of §3 for one
// annotated circuit. It is immutable after construction — SetObs, which
// attaches telemetry handles, must run before the estimator is shared —
// and then safe for concurrent use.
type Estimator struct {
	P  Params
	A  *celllib.Annotated
	TS *TimeSets

	nominalDelay float64

	// Per-gate ρ-hop neighbourhoods, precomputed once so that the
	// separation parameter — by far the most frequently re-evaluated
	// estimate during evolution — needs no repeated BFS. nbrGate[g] lists
	// the logic gates within ρ hops of g (excluding g), nbrDist[g] the
	// matching hop counts.
	nbrGate [][]int32
	nbrDist [][]uint8

	// Telemetry handles, resolved once by SetObs; nil (no-op) when the
	// estimator is unobserved. The metrics themselves are atomic, so the
	// optimizer worker pools record through them without contention.
	evalCalls   *obs.Counter
	evalSeconds *obs.Histogram

	// Fault injector, attached by SetChaos; nil in production. The
	// injector corrupts the estimator's own outputs (estimate.nan,
	// estimate.inf) so the numeric guards between here and the optimizers
	// can be exercised deterministically.
	chaos *chaos.Injector

	// scratch pools the per-EvalModule transient buffers (current
	// profile, module membership mask). EvalModule runs millions of times
	// per optimizer run on concurrent worker pools, so these must not be
	// allocated per call. Pool contents never affect results: the buffers
	// are (re)initialized before every use.
	scratch sync.Pool
}

// evalScratch is the transient working memory of one EvalModule call.
type evalScratch struct {
	prof     []float64 // current profile over the time grid
	inModule []bool    // gate-ID membership mask; all false between uses
}

func (e *Estimator) getScratch() *evalScratch {
	sc, _ := e.scratch.Get().(*evalScratch)
	if sc == nil {
		//lint:ignore hotalloc pool miss only: steady-state evaluations reuse pooled scratch
		sc = &evalScratch{
			//lint:ignore hotalloc pool miss only
			prof: make([]float64, e.TS.Depth()+1),
			//lint:ignore hotalloc pool miss only
			inModule: make([]bool, e.A.Circuit.NumGates()),
		}
	}
	return sc
}

// SetObs attaches run telemetry: every EvalModule call increments
// MetricEvalModuleCalls and records its latency into
// MetricEvalModuleSeconds. Call it right after New, before the estimator
// is shared across goroutines; a nil o detaches nothing and keeps the
// estimator unobserved.
func (e *Estimator) SetObs(o *obs.Obs) {
	if e == nil || o == nil {
		return
	}
	e.evalCalls = o.Counter(MetricEvalModuleCalls)
	e.evalSeconds = o.Histogram(MetricEvalModuleSeconds, nil)
}

// SetChaos attaches a fault injector that poisons estimator outputs at
// the estimate.nan and estimate.inf sites. Like SetObs it must run before
// the estimator is shared; a nil injector (the default) costs one nil
// check per EvalModule.
func (e *Estimator) SetChaos(in *chaos.Injector) {
	if e == nil {
		return
	}
	e.chaos = in
}

// New builds an Estimator, computing the transition-time sets, the
// nominal (sensor-free) circuit delay, and the bounded-distance cache
// once.
func New(a *celllib.Annotated, p Params) *Estimator {
	e := &Estimator{P: p, A: a, TS: TransitionTimes(a.Circuit)}
	e.nominalDelay = e.longestPath(nil, nil, nil)
	c := a.Circuit
	e.nbrGate = make([][]int32, c.NumGates())
	e.nbrDist = make([][]uint8, c.NumGates())
	for _, g := range c.LogicGates() {
		dist := c.BoundedDistances(g, p.Rho)
		// Iterate the neighbor map in sorted order: the cache's layout
		// feeds float summations in the cost path, where accumulation
		// order changes the rounding and breaks bit-identical resume.
		nbs := make([]int, 0, len(dist))
		for nb := range dist {
			if nb != g {
				nbs = append(nbs, nb)
			}
		}
		sort.Ints(nbs)
		gates := make([]int32, 0, len(nbs))
		dists := make([]uint8, 0, len(nbs))
		for _, nb := range nbs {
			gates = append(gates, int32(nb))
			dists = append(dists, uint8(dist[nb]))
		}
		e.nbrGate[g] = gates
		e.nbrDist[g] = dists
	}
	return e
}

// Module is the estimator output for one gate group: everything the cost
// function and the constraints of §2 need.
type Module struct {
	Gates []int // the group, ascending gate IDs

	IDDMax     float64 // §3.1 transient-current upper bound, A
	Rs         float64 // bypass ON resistance r*/îDD,max, Ω
	Cs         float64 // virtual-rail parasitic capacitance, F
	Tau        float64 // sensor time constant Rs·Cs, s
	SensorArea float64 // A0 + A1/Rs
	LeakND     float64 // worst-case fault-free IDDQ,nd, A
	Settle     float64 // Δ(τ): current-decay + sensing time, s (§3.4)
	Separation int     // S(M) of §3.3
	Activity   []int   // n(t) profile over the time grid
}

// Discriminability returns d(M) = IDDQ,th / IDDQ,nd (§2).
func (m *Module) Discriminability(iddqTh float64) float64 {
	if m.LeakND <= 0 {
		return 1e18 // an empty module discriminates perfectly
	}
	return iddqTh / m.LeakND
}

// must unwraps an electrical-model result. The estimator only ever feeds
// the models validated inputs — positive Params from DefaultParams and
// positive currents/delays from an annotated cell library — so an error
// here is an invariant violation, not an input condition; the optimizer
// worker pools recover such panics into errors. The panic value is the
// wrapped error itself, so errors.Is still sees electrical.ErrNonFinite
// after the recover boundary.
func must(v float64, err error) float64 {
	if err != nil {
		panic(fmt.Errorf("estimate: %w", err))
	}
	return v
}

// mustFinite guards an estimate that does not pass through an electrical
// model (and so would otherwise carry NaN/Inf silently into the cost
// function). Like must, it panics with an ErrNonFinite-wrapping error for
// the worker pools to recover.
func mustFinite(name string, v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Errorf("estimate: %s = %g: %w", name, v, electrical.ErrNonFinite))
	}
	return v
}

// EvalModule computes all per-module estimates for a gate group.
func (e *Estimator) EvalModule(gates []int) *Module {
	if e.evalCalls != nil {
		e.evalCalls.Inc()
		defer e.evalSeconds.ObserveSince(time.Now())
	}
	//lint:ignore hotalloc the Module is the call's result, retained in the partition's estimate cache
	m := &Module{Gates: gates}
	if len(gates) == 0 {
		//lint:ignore hotalloc retained in the returned Module; empty modules only
		m.Activity = make([]int, e.TS.Depth()+1)
		return m
	}
	sc := e.getScratch()
	defer e.scratch.Put(sc)
	m.IDDMax = e.TS.maxCurrentScratch(e.A, gates, sc.prof)
	if e.chaos.Hit(chaos.SiteEstimateNaN) {
		m.IDDMax = math.NaN() // poison: SensorROn's guard must catch it
	}
	m.Rs = must(electrical.SensorROn(e.P.RailLimit, m.IDDMax))
	m.Cs = e.P.CsSensor
	for _, g := range gates {
		m.Cs += e.A.Cout[g]
	}
	m.Tau = m.Rs * m.Cs
	m.SensorArea = must(electrical.SensorArea(e.P.AreaA0, e.P.AreaA1, m.Rs))
	m.LeakND = e.A.TotalLeakageMax(gates)
	if e.chaos.Hit(chaos.SiteEstimateInf) {
		m.LeakND = math.Inf(1) // poison: mustFinite below must catch it
	}
	m.LeakND = mustFinite("IDDQ,nd", m.LeakND)
	m.Settle = must(electrical.SettlingTime(m.Tau, m.IDDMax, e.P.IDDQth))
	m.Separation = e.separationScratch(gates, sc.inModule)
	m.Activity = e.TS.ActivityProfile(gates)
	return m
}

// SeparationModule computes S(M) of §3.3: the sum over all gate pairs of
// the separation parameter S(gi, gj) — the undirected hop distance in the
// circuit graph, forced to ρ when the distance exceeds ρ or no path
// exists. S(M) is minimal when the module is a tightly connected cluster.
// Pairs farther than ρ hops (or disconnected) contribute exactly ρ, so
// S(M) = ρ·(number of pairs) − Σ_{near pairs} (ρ − dist); only the cached
// ρ-hop neighbourhoods need to be scanned.
func (e *Estimator) SeparationModule(gates []int) int {
	return e.separationScratch(gates, make([]bool, e.A.Circuit.NumGates()))
}

// separationScratch is SeparationModule against a caller-provided
// membership mask (all false on entry; restored to all false on return so
// pooled masks need no full clear between uses).
func (e *Estimator) separationScratch(gates []int, inModule []bool) int {
	if len(gates) < 2 {
		return 0
	}
	for _, g := range gates {
		inModule[g] = true
	}
	rho := e.P.Rho
	pairs := len(gates) * (len(gates) - 1) / 2
	sum := rho * pairs
	for _, g := range gates {
		nbrs, dists := e.nbrGate[g], e.nbrDist[g]
		for i, nb := range nbrs {
			if nb > int32(g) && inModule[nb] {
				sum -= rho - int(dists[i])
			}
		}
	}
	for _, g := range gates {
		inModule[g] = false
	}
	return sum
}

// NominalDelay returns the longest-path delay D of the sensor-free
// circuit.
func (e *Estimator) NominalDelay() float64 { return e.nominalDelay }

// BICDelay returns D_BIC: the longest-path delay with every gate's delay
// degraded by δ(g, t) of §3.2. moduleOf maps each gate ID to its module
// index (inputs may carry any value); mods holds the corresponding module
// estimates. The gate delays are "time grid functions": the degradation
// of gate g is evaluated at the grid time the critical transition reaches
// it (its level — the longest input→g path), using the module's activity
// n(t) at exactly that instant, the module's Rs, and its rail capacitance.
func (e *Estimator) BICDelay(moduleOf []int, mods []*Module) float64 {
	return e.longestPath(moduleOf, mods, nil)
}

// BICDelayScratch is BICDelay with a caller-provided arrival-time buffer
// (reused when cap(scratch) covers the circuit), for cost evaluations on
// the optimizers' hot path.
func (e *Estimator) BICDelayScratch(moduleOf []int, mods []*Module, scratch []float64) float64 {
	return e.longestPath(moduleOf, mods, scratch)
}

// longestPath computes the circuit delay; with mods == nil it is the
// nominal delay, otherwise per-gate degradation factors are applied.
// scratch, if non-nil, is reused for arrival times.
func (e *Estimator) longestPath(moduleOf []int, mods []*Module, scratch []float64) float64 {
	c := e.A.Circuit
	arrival := scratch
	if cap(arrival) < c.NumGates() {
		//lint:ignore hotalloc fallback when the caller provides no (or an undersized) pooled buffer
		arrival = make([]float64, c.NumGates())
	} else {
		arrival = arrival[:c.NumGates()]
		for i := range arrival {
			arrival[i] = 0
		}
	}
	var worst float64
	var levels []int
	if mods != nil {
		levels = c.Levels()
	}
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input {
			arrival[id] = 0
			continue
		}
		var in float64
		for _, f := range g.Fanin {
			if arrival[f] > in {
				in = arrival[f]
			}
		}
		d := e.A.Delay[id]
		if mods != nil {
			mi := moduleOf[id]
			if mi >= 0 && mi < len(mods) && mods[mi] != nil {
				m := mods[mi]
				// Activity at the critical transition's grid time.
				n := 1
				if t := levels[id]; t < len(m.Activity) && m.Activity[t] > 1 {
					n = m.Activity[t]
				}
				d *= must(electrical.DelayDegradation(n, m.Rs, e.A.Rg[id], e.A.Delay[id], m.Cs))
			}
		}
		arrival[id] = in + d
		if arrival[id] > worst {
			worst = arrival[id]
		}
	}
	return worst
}

// DelayOverhead returns c₂ = (D_BIC − D) / D of §3.2.
func (e *Estimator) DelayOverhead(dBIC float64) float64 {
	return (dBIC - e.nominalDelay) / e.nominalDelay
}

// TestTimeOverhead returns c₄ of §3.4. A test vector is applied, the
// slowest module's transient decays and its IDDQ is sensed, so the
// per-vector period is D'_BIC = D_BIC + max_i Δ(τ_i); the overhead is
// measured against the sensor-free per-vector period D.
func (e *Estimator) TestTimeOverhead(dBIC float64, mods []*Module) float64 {
	var settle float64
	for _, m := range mods {
		if m != nil && m.Settle > settle {
			settle = m.Settle
		}
	}
	return (dBIC + settle - e.nominalDelay) / e.nominalDelay
}
