package bench

import (
	"os"
	"strings"
	"testing"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
)

const c17Bench = `# c17
# five inputs, two outputs
INPUT(I1)
INPUT(I2)
INPUT(I3)
INPUT(I4)
INPUT(I5)
OUTPUT(g5)
OUTPUT(g6)
g1 = NAND(I1, I3)
g2 = NAND(I3, I4)
g3 = NAND(I2, g2)
g4 = NAND(g2, I5)
g5 = NAND(g1, g3)
g6 = NAND(g3, g4)
`

func TestReadC17(t *testing.T) {
	c, err := Read(strings.NewReader(c17Bench), "unnamed")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if c.Name != "c17" {
		t.Errorf("Name = %q, want c17 (from header comment)", c.Name)
	}
	if c.NumLogicGates() != 6 || len(c.Inputs) != 5 || len(c.Outputs) != 2 {
		t.Errorf("structure: %s", c)
	}
	g3, ok := c.GateByName("g3")
	if !ok {
		t.Fatal("g3 missing")
	}
	if g3.Type != circuit.Nand || len(g3.Fanin) != 2 {
		t.Errorf("g3 = %+v", g3)
	}
}

func TestReadForwardReference(t *testing.T) {
	src := `INPUT(a)
OUTPUT(y)
y = NOT(x)
x = BUF(a)
`
	c, err := Read(strings.NewReader(src), "fwd")
	if err != nil {
		t.Fatalf("Read with forward reference: %v", err)
	}
	y, _ := c.GateByName("y")
	x, _ := c.GateByName("x")
	if len(y.Fanin) != 1 || y.Fanin[0] != x.ID {
		t.Errorf("forward reference not resolved: y.Fanin=%v x.ID=%d", y.Fanin, x.ID)
	}
}

func TestReadCaseInsensitiveKeywords(t *testing.T) {
	src := `input(a)
input(b)
output(y)
y = nand(a, b)
`
	c, err := Read(strings.NewReader(src), "lc")
	if err != nil {
		t.Fatalf("Read lowercase: %v", err)
	}
	if c.NumLogicGates() != 1 {
		t.Errorf("gates = %d, want 1", c.NumLogicGates())
	}
}

func TestReadDefaultName(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	c, err := Read(strings.NewReader(src), "fallback")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if c.Name != "fallback" {
		t.Errorf("Name = %q, want fallback", c.Name)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown function":  "INPUT(a)\nOUTPUT(y)\ny = MUX(a, a)\n",
		"malformed expr":    "INPUT(a)\nOUTPUT(y)\ny = NOT a\n",
		"empty arg":         "INPUT(a)\nOUTPUT(y)\ny = NAND(a, )\n",
		"input rhs":         "INPUT(a)\nOUTPUT(y)\ny = INPUT(a)\n",
		"two-arg OUTPUT":    "INPUT(a)\nOUTPUT(a, b)\n",
		"unknown directive": "WIBBLE(a)\n",
		"missing lhs":       "INPUT(a)\n = NOT(a)\n",
		"unknown fanin":     "INPUT(a)\nOUTPUT(y)\ny = NOT(zzz)\n",
		"no parens":         "INPUT\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), "x"); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c1, err := Read(strings.NewReader(c17Bench), "x")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	text := Format(c1)
	c2, err := Read(strings.NewReader(text), "x")
	if err != nil {
		t.Fatalf("re-Read: %v\n%s", err, text)
	}
	if Fingerprint(c1) != Fingerprint(c2) {
		t.Errorf("round trip changed structure:\n%s\nvs\n%s", Fingerprint(c1), Fingerprint(c2))
	}
	if c2.Name != "c17" {
		t.Errorf("round trip lost name: %q", c2.Name)
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"
	b := "INPUT(b)\nINPUT(a)\nOUTPUT(y)\ny = NAND(b, a)\n"
	ca, err := Read(strings.NewReader(a), "x")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Read(strings.NewReader(b), "x")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(ca) != Fingerprint(cb) {
		t.Error("fingerprint should be independent of declaration and fanin order")
	}
}

func TestWriteIsTopological(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = BUF(a)\n"
	c, err := Read(strings.NewReader(src), "fwd")
	if err != nil {
		t.Fatal(err)
	}
	out := Format(c)
	ix := strings.Index(out, "x = BUF")
	iy := strings.Index(out, "y = NOT")
	if ix < 0 || iy < 0 || ix > iy {
		t.Errorf("Write should emit x before y:\n%s", out)
	}
}

// Property: any generated circuit round-trips through the .bench format
// bit-exact in structure.
func TestRoundTripRandomCircuits(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c1, err := circuits.RandomLogic(circuits.Spec{
			Name: "rt", Inputs: 5 + int(seed), Outputs: 3,
			Gates: 40 + 10*int(seed), Depth: 6 + int(seed)%5, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Read(strings.NewReader(Format(c1)), "x")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if Fingerprint(c1) != Fingerprint(c2) {
			t.Fatalf("seed %d: structure changed", seed)
		}
	}
}

// The shipped benchmark netlists in benchmarks/ must parse and match the
// generators that produced them.
func TestShippedBenchmarkFiles(t *testing.T) {
	dir := "../../benchmarks"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("benchmarks directory not present: %v", err)
	}
	parsed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".bench") {
			continue
		}
		f, err := os.Open(dir + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		c, err := Read(f, e.Name())
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		parsed++
		name := strings.TrimSuffix(e.Name(), ".bench")
		if prof, ok := circuits.ProfileFor(name); ok && name != "c6288" {
			if c.NumLogicGates() != prof.Gates {
				t.Errorf("%s: %d gates, profile says %d — regenerate with cmd/benchgen",
					name, c.NumLogicGates(), prof.Gates)
			}
			gen := circuits.MustISCAS85Like(name)
			if Fingerprint(c) != Fingerprint(gen) {
				t.Errorf("%s: shipped file drifted from the generator", name)
			}
		}
	}
	if parsed < 10 {
		t.Errorf("parsed only %d shipped netlists", parsed)
	}
}
