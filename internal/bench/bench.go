// Package bench reads and writes the ISCAS85 ".bench" netlist format, the
// standard interchange format for the combinational benchmark circuits the
// paper evaluates on (C1908 ... C7552).
//
// The format is line-oriented:
//
//	# comment
//	INPUT(I1)
//	OUTPUT(g5)
//	g1 = NAND(I1, I3)
//
// Keywords are case-insensitive; net names are case-sensitive identifiers.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"iddqsyn/internal/circuit"
)

// Read parses a .bench netlist from r. The circuit name is taken from the
// first "# name" comment if present, otherwise defaultName.
func Read(r io.Reader, defaultName string) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	name := defaultName
	b := circuit.NewBuilder(defaultName)
	var named bool
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !named {
				if c := strings.TrimSpace(strings.TrimPrefix(line, "#")); c != "" {
					name = firstToken(c)
					named = true
				}
			}
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("bench: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	c, err := buildRenamed(b, name, defaultName)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return c, nil
}

func firstToken(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i]
		}
	}
	return s
}

// buildRenamed builds the circuit and fixes up the name discovered in the
// header comment. circuit.Builder fixes its name at construction, so we
// rebuild the struct name after Build.
func buildRenamed(b *circuit.Builder, name, defaultName string) (*circuit.Circuit, error) {
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	if name != defaultName {
		c.Name = name
	}
	return c, nil
}

func parseLine(b *circuit.Builder, line string) error {
	if eq := strings.IndexByte(line, '='); eq >= 0 {
		lhs := strings.TrimSpace(line[:eq])
		rhs := strings.TrimSpace(line[eq+1:])
		if lhs == "" {
			return fmt.Errorf("missing net name before '='")
		}
		fn, args, err := splitCall(rhs)
		if err != nil {
			return err
		}
		typ, ok := circuit.ParseGateType(fn)
		if !ok {
			return fmt.Errorf("unknown gate function %q", fn)
		}
		if typ == circuit.Input {
			return fmt.Errorf("INPUT cannot appear on the right-hand side")
		}
		b.AddGate(lhs, typ, args...)
		return nil
	}
	fn, args, err := splitCall(line)
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("%s takes exactly one net, got %d", fn, len(args))
	}
	switch strings.ToUpper(fn) {
	case "INPUT":
		b.AddInput(args[0])
	case "OUTPUT":
		b.MarkOutput(args[0])
	default:
		return fmt.Errorf("unknown directive %q", fn)
	}
	return nil
}

// splitCall parses "FN(a, b, c)" into the function name and argument list.
func splitCall(s string) (fn string, args []string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed expression %q", s)
	}
	fn = strings.TrimSpace(s[:open])
	if fn == "" {
		return "", nil, fmt.Errorf("malformed expression %q", s)
	}
	inner := s[open+1 : len(s)-1]
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("empty argument in %q", s)
		}
		args = append(args, a)
	}
	if len(args) == 0 {
		return "", nil, fmt.Errorf("no arguments in %q", s)
	}
	return fn, args, nil
}

// Write emits the circuit in .bench format. Gates are emitted in
// topological order so that the file round-trips through Read and remains
// human-auditable.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	stats := c.ComputeStats()
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, depth %d\n",
		stats.Inputs, stats.Outputs, stats.LogicGates, stats.Depth)
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// Format renders the circuit to a .bench string (convenience for tests and
// tools).
func Format(c *circuit.Circuit) string {
	var sb strings.Builder
	// strings.Builder never fails; keep the signature simple.
	mustWrite(Write(&sb, c))
	return sb.String()
}

// mustWrite asserts that an in-memory render cannot fail — an error here
// is an invariant violation, so it panics per the project's panic policy.
func mustWrite(err error) {
	if err != nil {
		panic("bench: " + err.Error())
	}
}

// Fingerprint returns a canonical structural summary string used to detect
// accidental generator drift in tests: sorted gate lines independent of
// declaration order.
func Fingerprint(c *circuit.Circuit) string {
	lines := make([]string, 0, c.NumGates())
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == circuit.Input {
			lines = append(lines, "INPUT "+g.Name)
			continue
		}
		names := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			names[j] = c.Gates[f].Name
		}
		sort.Strings(names)
		lines = append(lines, g.Name+" "+g.Type.String()+" "+strings.Join(names, " "))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
