package podem

import (
	"math/rand"
	"testing"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/logicsim"
)

func mustBuild(t *testing.T, f func(b *circuit.Builder)) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("t")
	f(b)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// verify simulates the returned vector and checks every objective.
func verify(t *testing.T, c *circuit.Circuit, vec []bool, objs []Objective) {
	t.Helper()
	sim := logicsim.New(c)
	if err := sim.ApplyBits(vec); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if got := sim.Value(o.Gate); got != logicsim.FromBool(o.Value) {
			t.Fatalf("objective gate %d: got %v, want %v", o.Gate, got, o.Value)
		}
	}
}

func gid(t *testing.T, c *circuit.Circuit, name string) int {
	t.Helper()
	g, ok := c.GateByName(name)
	if !ok {
		t.Fatalf("gate %s missing", name)
	}
	return g.ID
}

func TestJustifyAndOutputHigh(t *testing.T) {
	// AND(a,b,c) = 1 forces all inputs high — needs real backtracing.
	c := mustBuild(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b").AddInput("c")
		b.AddGate("y", circuit.And, "a", "b", "c")
		b.MarkOutput("y")
	})
	objs := []Objective{{gid(t, c, "y"), true}}
	vec, st, err := Justify(c, objs, 100)
	if err != nil || st != Found {
		t.Fatalf("status %v, err %v", st, err)
	}
	verify(t, c, vec, objs)
	for i, v := range vec {
		if !v {
			t.Errorf("input %d must be 1 for AND=1", i)
		}
	}
}

func TestJustifyProvenUnsat(t *testing.T) {
	// AND(a, NOT a) = 1 is unsatisfiable through reconvergence.
	c := mustBuild(t, func(b *circuit.Builder) {
		b.AddInput("a")
		b.AddGate("n", circuit.Not, "a")
		b.AddGate("y", circuit.And, "a", "n")
		b.MarkOutput("y")
	})
	_, st, err := Justify(c, []Objective{{gid(t, c, "y"), true}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status %v, want unsat", st)
	}
	// The complementary objective is trivially satisfiable.
	vec, st, err := Justify(c, []Objective{{gid(t, c, "y"), false}}, 100)
	if err != nil || st != Found {
		t.Fatalf("status %v, err %v", st, err)
	}
	verify(t, c, vec, []Objective{{gid(t, c, "y"), false}})
}

func TestJustifyMultipleObjectives(t *testing.T) {
	// Opposite values on two nets — the bridge-excitation pattern.
	c := circuits.C17()
	g1, g2 := gid(t, c, "g1"), gid(t, c, "g2")
	objs := []Objective{{g1, true}, {g2, false}}
	vec, st, err := Justify(c, objs, 1000)
	if err != nil || st != Found {
		t.Fatalf("status %v, err %v", st, err)
	}
	verify(t, c, vec, objs)
}

func TestJustifyConflictingObjectives(t *testing.T) {
	// The same net high and low at once.
	c := circuits.C17()
	g1 := gid(t, c, "g1")
	_, st, err := Justify(c, []Objective{{g1, true}, {g1, false}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("status %v, want unsat", st)
	}
}

func TestJustifyValidation(t *testing.T) {
	c := circuits.C17()
	if _, _, err := Justify(c, nil, 10); err == nil {
		t.Error("want error for no objectives")
	}
	if _, _, err := Justify(c, []Objective{{Gate: 999}}, 10); err == nil {
		t.Error("want error for out-of-range gate")
	}
}

func TestStatusString(t *testing.T) {
	if Found.String() != "found" || Unsat.String() != "unsat" || Aborted.String() != "aborted" {
		t.Error("Status.String mismatch")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("out-of-range Status.String")
	}
}

// Property: on random circuits, every Found result verifies by
// simulation, and Unsat results are confirmed by exhaustive enumeration
// on small input counts.
func TestJustifyAgainstExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, err := circuits.RandomLogic(circuits.Spec{
			Name: "p", Inputs: 6, Outputs: 3,
			Gates: 20 + rng.Intn(25), Depth: 4 + rng.Intn(4), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		logic := c.LogicGates()
		for trial := 0; trial < 6; trial++ {
			a := logic[rng.Intn(len(logic))]
			b := logic[rng.Intn(len(logic))]
			objs := []Objective{{a, rng.Intn(2) == 1}, {b, rng.Intn(2) == 1}}
			vec, st, err := Justify(c, objs, 5000)
			if err != nil {
				t.Fatal(err)
			}
			satisfiable := exhaustiveSat(t, c, objs)
			switch st {
			case Found:
				if !satisfiable {
					t.Fatalf("seed %d: Found but exhaustive says unsat", seed)
				}
				verify(t, c, vec, objs)
			case Unsat:
				if satisfiable {
					t.Fatalf("seed %d: Unsat but a satisfying vector exists", seed)
				}
			case Aborted:
				t.Logf("seed %d trial %d: aborted (budget)", seed, trial)
			}
		}
	}
}

func exhaustiveSat(t *testing.T, c *circuit.Circuit, objs []Objective) bool {
	t.Helper()
	sim := logicsim.New(c)
	n := len(c.Inputs)
	vec := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range vec {
			vec[i] = mask&(1<<i) != 0
		}
		if err := sim.ApplyBits(vec); err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, o := range objs {
			if sim.Value(o.Gate) != logicsim.FromBool(o.Value) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
