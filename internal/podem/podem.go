// Package podem implements a PODEM-style deterministic justification
// engine: given a set of net-value objectives, it searches the primary
// input space with backtrace and backtracking until it finds an input
// vector establishing all objectives, proves none exists, or exhausts its
// backtrack budget.
//
// IDDQ testing needs exactly this and nothing more: detecting a defect
// requires only *exciting* it (a bridge needs its two nets at opposite
// values, a gate-oxide short needs its pin high, a stuck-on transistor
// needs the output at the fighting value) — no fault-effect propagation
// to outputs, so the D-frontier machinery of full PODEM is unnecessary.
// Package atpg uses this engine to top up pseudo-random test sets with
// vectors for the random-resistant faults.
package podem

import (
	"fmt"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/logicsim"
)

// Objective requires gate (net) to settle at Value.
type Objective struct {
	Gate  int
	Value bool
}

// Status reports the outcome of a justification search.
type Status int

// Search outcomes.
const (
	Found   Status = iota // a vector establishing all objectives exists
	Unsat                 // proven: no input vector can establish them
	Aborted               // backtrack budget exhausted before a proof
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Found:
		return "found"
	case Unsat:
		return "unsat"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

type decision struct {
	input   int // index into c.Inputs
	value   bool
	flipped bool // both branches tried
}

// Justify searches for an input vector establishing all objectives.
// Unassigned inputs in the returned vector are false. maxBacktracks
// bounds the search; exceeding it returns Aborted.
func Justify(c *circuit.Circuit, objs []Objective, maxBacktracks int) ([]bool, Status, error) {
	if len(objs) == 0 {
		return nil, Found, fmt.Errorf("podem: no objectives")
	}
	for _, o := range objs {
		if o.Gate < 0 || o.Gate >= c.NumGates() {
			return nil, Unsat, fmt.Errorf("podem: objective gate %d out of range", o.Gate)
		}
	}
	sim := logicsim.New(c)
	vec := make([]logicsim.Value, len(c.Inputs)) // X = unassigned
	apply := func() error { return sim.Apply(vec) }
	if err := apply(); err != nil {
		return nil, Aborted, err
	}

	var stack []decision
	backtracks := 0
	for {
		switch check(sim, objs) {
		case objsSatisfied:
			out := make([]bool, len(vec))
			for i, v := range vec {
				out[i] = v == logicsim.One
			}
			return out, Found, nil
		case objsConflict:
			// Undo decisions until an unflipped one remains.
			for {
				if len(stack) == 0 {
					return nil, Unsat, nil
				}
				top := &stack[len(stack)-1]
				if !top.flipped {
					backtracks++
					if backtracks > maxBacktracks {
						return nil, Aborted, nil
					}
					top.flipped = true
					top.value = !top.value
					vec[top.input] = logicsim.FromBool(top.value)
					if err := apply(); err != nil {
						return nil, Aborted, err
					}
					break
				}
				vec[top.input] = logicsim.X
				stack = stack[:len(stack)-1]
				if err := apply(); err != nil {
					return nil, Aborted, err
				}
			}
		case objsUndecided:
			// Backtrace the first undecided objective to an unassigned
			// primary input and decide it.
			pi, val, ok := backtrace(c, sim, objs)
			if !ok {
				// No X input influences the undecided objectives — the
				// remaining values are fixed by assigned inputs, so the
				// objectives are unreachable on this branch. Treat as a
				// conflict by flipping the most recent decision.
				if len(stack) == 0 {
					return nil, Unsat, nil
				}
				// Force the conflict path on the next iteration by
				// marking the objective state as conflicting via a
				// direct backtrack.
				top := &stack[len(stack)-1]
				if !top.flipped {
					backtracks++
					if backtracks > maxBacktracks {
						return nil, Aborted, nil
					}
					top.flipped = true
					top.value = !top.value
					vec[top.input] = logicsim.FromBool(top.value)
				} else {
					vec[top.input] = logicsim.X
					stack = stack[:len(stack)-1]
				}
				if err := apply(); err != nil {
					return nil, Aborted, err
				}
				continue
			}
			stack = append(stack, decision{input: pi, value: val})
			vec[pi] = logicsim.FromBool(val)
			if err := apply(); err != nil {
				return nil, Aborted, err
			}
		}
	}
}

type objState int

const (
	objsSatisfied objState = iota
	objsConflict
	objsUndecided
)

func check(sim *logicsim.Simulator, objs []Objective) objState {
	state := objsSatisfied
	for _, o := range objs {
		switch sim.Value(o.Gate) {
		case logicsim.X:
			state = objsUndecided
		case logicsim.FromBool(o.Value):
			// satisfied; keep scanning
		default:
			return objsConflict
		}
	}
	return state
}

// backtrace walks from the first undecided objective towards the inputs,
// at each gate choosing an X-valued fanin and accounting for the gate's
// inversion, and returns the primary-input index and value to try.
func backtrace(c *circuit.Circuit, sim *logicsim.Simulator, objs []Objective) (pi int, value bool, ok bool) {
	for _, o := range objs {
		if sim.Value(o.Gate) != logicsim.X {
			continue
		}
		g, v := o.Gate, o.Value
		for c.Gates[g].Type != circuit.Input {
			gate := &c.Gates[g]
			next := -1
			for _, f := range gate.Fanin {
				if sim.Value(f) == logicsim.X {
					next = f
					break
				}
			}
			if next < 0 {
				break // all fanins decided yet output X cannot happen on a settled sim
			}
			if gate.Type.Inverting() {
				v = !v
			}
			g = next
		}
		if c.Gates[g].Type == circuit.Input {
			for i, id := range c.Inputs {
				if id == g {
					return i, v, true
				}
			}
		}
	}
	return 0, false, false
}
