package deltaiddq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxGap(t *testing.T) {
	cases := []struct {
		sig  Signature
		want float64
	}{
		{nil, 0},
		{Signature{1}, 0},
		{Signature{1, 1, 1}, 0},
		{Signature{1, 2, 10}, 8},
		{Signature{10, 2, 1}, 8}, // order must not matter
		{Signature{0, 0.5, 1.0, 1.5}, 0.5},
	}
	for _, tc := range cases {
		if got := MaxGap(tc.sig); got != tc.want {
			t.Errorf("MaxGap(%v) = %g, want %g", tc.sig, got, tc.want)
		}
	}
}

func TestMaxGapDoesNotMutate(t *testing.T) {
	sig := Signature{3, 1, 2}
	MaxGap(sig)
	if sig[0] != 3 || sig[1] != 1 || sig[2] != 2 {
		t.Error("MaxGap sorted the caller's signature")
	}
}

func TestDetectorValidate(t *testing.T) {
	if err := DefaultDetector().Validate(); err != nil {
		t.Errorf("default detector invalid: %v", err)
	}
	if err := (Detector{AbsFloor: 0}).Validate(); err == nil {
		t.Error("want error for zero floor")
	}
	if err := (Detector{AbsFloor: 1, RelStep: -1}).Validate(); err == nil {
		t.Error("want error for negative relative step")
	}
}

func TestDetectModuleDefectStep(t *testing.T) {
	det := DefaultDetector()
	// Fault-free signature: tight leakage cluster (nA scale).
	clean := Signature{1.0e-9, 1.1e-9, 1.05e-9, 0.98e-9, 1.12e-9}
	if det.DetectModule(clean) {
		t.Error("clean signature flagged")
	}
	// Defective: some vectors excite a 1 mA bridge.
	defective := append(append(Signature{}, clean...), 1.0e-3, 1.0001e-3)
	if !det.DetectModule(defective) {
		t.Error("defect step missed")
	}
	// Scaling the whole die's leakage by 100x (hot, leaky die) must not
	// flag a clean signature — the gaps scale too but stay below floor.
	hot := make(Signature, len(clean))
	for i, v := range clean {
		hot[i] = v * 100
	}
	if det.DetectModule(hot) {
		t.Error("hot-but-clean die flagged")
	}
}

func TestDetectModuleShortSignatures(t *testing.T) {
	det := DefaultDetector()
	if det.DetectModule(nil) || det.DetectModule(Signature{1e-3}) {
		t.Error("signatures with <2 samples cannot be judged")
	}
}

func TestDetectAnyModule(t *testing.T) {
	det := DefaultDetector()
	clean := Signature{1e-9, 1.1e-9, 1.2e-9}
	bad := Signature{1e-9, 1.1e-9, 5e-4}
	if det.Detect([]Signature{clean, clean}) {
		t.Error("all-clean die flagged")
	}
	if !det.Detect([]Signature{clean, bad}) {
		t.Error("defective module missed")
	}
}

func TestRelStepGuardsSmoothRamps(t *testing.T) {
	// A smooth geometric ramp (10% between adjacent samples) can have an
	// absolute top gap above the floor, but every gap is comparable to
	// the median: the relative test must reject it.
	det := Detector{AbsFloor: 1e-5, RelStep: 20}
	ramp := make(Signature, 24)
	v := 1e-4
	for i := range ramp {
		ramp[i] = v
		v *= 1.1
	}
	if MaxGap(ramp) < det.AbsFloor {
		t.Fatal("fixture too small to exercise the relative guard")
	}
	if det.DetectModule(ramp) {
		t.Error("smooth ramp flagged as defect")
	}
	// The same ramp truncated, with a genuine 1 mA step on top, must be
	// caught: the step dwarfs the ramp's own gaps.
	stepped := append(append(Signature{}, ramp[:12]...), ramp[11]+1e-3)
	if !det.DetectModule(stepped) {
		t.Error("step on a truncated ramp missed")
	}
}

// Property: detection is invariant under signature permutation.
func TestDetectPermutationInvariant(t *testing.T) {
	det := DefaultDetector()
	prop := func(seed int64, defective bool) bool {
		rng := rand.New(rand.NewSource(seed))
		sig := make(Signature, 16)
		for i := range sig {
			sig[i] = (0.8 + 0.4*rng.Float64()) * 1e-9
		}
		if defective {
			for i := 10; i < 13; i++ {
				sig[i] += 7e-4
			}
		}
		want := det.DetectModule(sig)
		shuffled := append(Signature{}, sig...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return det.DetectModule(shuffled) == want && want == defective
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
