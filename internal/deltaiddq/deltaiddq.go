// Package deltaiddq implements current-signature (delta-IDDQ) defect
// detection — the successor technique to the fixed IDDQ,th threshold the
// paper's sensors compare against. Instead of asking "is the current
// above an absolute limit?", the per-vector measurements of one module
// are sorted into a current signature; a defect that is excited by some
// vectors and not others splits the signature into two clusters separated
// by a step of roughly the defect current, regardless of how much the
// die's baseline leakage drifted. Signature analysis therefore stays
// sharp under die-to-die leakage spread that would force a fixed
// threshold to choose between overkill and escapes — which the comparison
// experiment in package experiments quantifies on the same Monte-Carlo
// populations as the yield study.
package deltaiddq

import (
	"fmt"
	"sort"
)

// Signature is one module's IDDQ measurements across the vector set, in
// application order.
type Signature []float64

// MaxGap returns the largest consecutive difference of the sorted
// signature — the "step" a state-dependent defect leaves. Signatures
// with fewer than two samples have no gap.
func MaxGap(sig Signature) float64 {
	if len(sig) < 2 {
		return 0
	}
	sorted := append(Signature(nil), sig...)
	sort.Float64s(sorted)
	var max float64
	for i := 1; i < len(sorted); i++ {
		if d := sorted[i] - sorted[i-1]; d > max {
			max = d
		}
	}
	return max
}

// Detector holds the signature-analysis decision parameters.
type Detector struct {
	// AbsFloor is the smallest step treated as a defect, A. It separates
	// defect steps (≳100 µA) from the state-dependent leakage ripple
	// (pA–nA) and absorbs measurement noise.
	AbsFloor float64
	// RelStep additionally requires the step to exceed RelStep × the
	// signature's median consecutive gap, guarding against smooth but
	// steep leakage ramps on high-variance processes. 0 disables it.
	RelStep float64
}

// DefaultDetector returns the settings used by the experiments: a 10 µA
// absolute floor (an order of magnitude under the smallest modelled
// defect, four above the largest leakage ripple) and a 20× relative
// requirement.
func DefaultDetector() Detector {
	return Detector{AbsFloor: 10e-6, RelStep: 20}
}

// DetectModule reports whether one module's signature indicates a defect.
func (d Detector) DetectModule(sig Signature) bool {
	if len(sig) < 2 {
		return false
	}
	gap := MaxGap(sig)
	if gap < d.AbsFloor {
		return false
	}
	if d.RelStep > 0 {
		if med := medianGap(sig); med > 0 && gap < d.RelStep*med {
			return false
		}
	}
	return true
}

// Detect reports whether any module's signature indicates a defect.
func (d Detector) Detect(signatures []Signature) bool {
	for _, sig := range signatures {
		if d.DetectModule(sig) {
			return true
		}
	}
	return false
}

// medianGap returns the lower median of the consecutive differences of
// the sorted signature. The lower median keeps the statistic robust on
// short signatures, where the defect step itself would otherwise be the
// middle element and mask its own detection.
func medianGap(sig Signature) float64 {
	sorted := append(Signature(nil), sig...)
	sort.Float64s(sorted)
	gaps := make([]float64, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		gaps = append(gaps, sorted[i]-sorted[i-1])
	}
	sort.Float64s(gaps)
	return gaps[(len(gaps)-1)/2]
}

// Validate checks the detector parameters.
func (d Detector) Validate() error {
	if d.AbsFloor <= 0 {
		return fmt.Errorf("deltaiddq: absolute floor must be positive")
	}
	if d.RelStep < 0 {
		return fmt.Errorf("deltaiddq: negative relative step")
	}
	return nil
}
