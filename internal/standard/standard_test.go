package standard

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
)

func estimatorFor(t *testing.T, c *circuit.Circuit) *estimate.Estimator {
	t.Helper()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	return estimate.New(a, estimate.DefaultParams())
}

// checkCover verifies a gate grouping is a valid partition of c.
func checkCover(t *testing.T, c *circuit.Circuit, groups [][]int) {
	t.Helper()
	seen := map[int]bool{}
	for gi, grp := range groups {
		if len(grp) == 0 {
			t.Fatalf("group %d empty", gi)
		}
		for _, g := range grp {
			if seen[g] {
				t.Fatalf("gate %d in two groups", g)
			}
			seen[g] = true
			if c.Gates[g].Type == circuit.Input {
				t.Fatalf("primary input %d grouped", g)
			}
		}
	}
	if len(seen) != c.NumLogicGates() {
		t.Fatalf("groups cover %d of %d gates", len(seen), c.NumLogicGates())
	}
}

func TestEstimateModuleSizeBounds(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	e := estimatorFor(t, c)
	cons := partition.DefaultConstraints()
	s := EstimateModuleSize(e, partition.PaperWeights(), cons)
	if s < 1 || s > c.NumLogicGates() {
		t.Fatalf("size %d out of range", s)
	}
	// The discriminability cap must hold: s gates of average leakage must
	// stay below IDDQ,th / d.
	var leakSum float64
	logic := c.LogicGates()
	for _, g := range logic {
		leakSum += e.A.LeakMax[g]
	}
	leakAvg := leakSum / float64(len(logic))
	if float64(s)*leakAvg > e.P.IDDQth/cons.MinDiscriminability*1.0001 {
		t.Errorf("size %d violates the averaged discriminability cap", s)
	}
}

func TestEstimateModuleSizeTightConstraintShrinks(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	e := estimatorFor(t, c)
	w := partition.PaperWeights()
	loose := EstimateModuleSize(e, w, partition.Constraints{MinDiscriminability: 2})
	tight := EstimateModuleSize(e, w, partition.Constraints{MinDiscriminability: 5000})
	if tight > loose {
		t.Errorf("tighter discriminability must not grow modules: %d > %d", tight, loose)
	}
}

func TestChainStartPartitionCovers(t *testing.T) {
	c := circuits.C17()
	rng := rand.New(rand.NewSource(1))
	groups := ChainStartPartition(c, 2, rng)
	checkCover(t, c, groups)
	for _, grp := range groups {
		if len(grp) > 2 {
			t.Errorf("group size %d exceeds max 2", len(grp))
		}
	}
}

func TestChainStartPartitionIsChain(t *testing.T) {
	// Each multi-gate module must be a fanout chain: gate i+1 in the
	// module is a fanout of gate i in generation order. After sorting we
	// can at least check connectivity within the module graph.
	c := circuits.MustISCAS85Like("c432")
	rng := rand.New(rand.NewSource(7))
	groups := ChainStartPartition(c, 5, rng)
	checkCover(t, c, groups)
	for _, grp := range groups {
		if len(grp) < 2 {
			continue
		}
		inGrp := map[int]bool{}
		for _, g := range grp {
			inGrp[g] = true
		}
		for _, g := range grp {
			connected := false
			for _, nb := range c.Neighbors(g) {
				if inGrp[nb] {
					connected = true
					break
				}
			}
			if !connected {
				t.Fatalf("gate %d isolated inside its chain module %v", g, grp)
			}
		}
	}
}

func TestChainStartPartitionDifferentSeedsDiffer(t *testing.T) {
	c := circuits.MustISCAS85Like("c880")
	g1 := ChainStartPartition(c, 6, rand.New(rand.NewSource(1)))
	g2 := ChainStartPartition(c, 6, rand.New(rand.NewSource(2)))
	if equalGroups(g1, g2) {
		t.Error("different seeds should produce different start partitions")
	}
	g1b := ChainStartPartition(c, 6, rand.New(rand.NewSource(1)))
	if !equalGroups(g1, g1b) {
		t.Error("same seed must reproduce the start partition")
	}
}

func equalGroups(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestStandardPartitionC17(t *testing.T) {
	c := circuits.C17()
	groups := StandardPartition(c, 3, 10)
	checkCover(t, c, groups)
	if len(groups) != 2 {
		t.Errorf("6 gates at size 3: %d groups, want 2", len(groups))
	}
	for _, grp := range groups {
		if len(grp) != 3 {
			t.Errorf("group size %d, want 3", len(grp))
		}
	}
}

func TestStandardPartitionClustersAreTight(t *testing.T) {
	// The greedy criterion clusters closely connected gates, so the summed
	// separation of its modules should beat a random partition of equal
	// sizes on average.
	c := circuits.MustISCAS85Like("c432")
	e := estimatorFor(t, c)
	groups := StandardPartition(c, 20, e.P.Rho)
	checkCover(t, c, groups)

	sepOf := func(groups [][]int) int {
		sum := 0
		for _, grp := range groups {
			sum += e.SeparationModule(grp)
		}
		return sum
	}
	stdSep := sepOf(groups)

	rng := rand.New(rand.NewSource(3))
	logic := c.LogicGates()
	worse := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		perm := append([]int(nil), logic...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var random [][]int
		for i := 0; i < len(perm); i += 20 {
			end := i + 20
			if end > len(perm) {
				end = len(perm)
			}
			random = append(random, perm[i:end])
		}
		if sepOf(random) > stdSep {
			worse++
		}
	}
	if worse < trials {
		t.Errorf("standard partitioning beat only %d/%d random partitions on separation", worse, trials)
	}
}

func TestStandardPartitionK(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	for _, k := range []int{2, 4, 8} {
		groups := StandardPartitionK(c, k, 10)
		checkCover(t, c, groups)
		// Allow slack: trailing gates can create an extra small module.
		if len(groups) < k || len(groups) > k+2 {
			t.Errorf("k=%d: got %d modules", k, len(groups))
		}
	}
}

// Property: StandardPartition always yields a valid cover for any module
// size, on a variety of circuits.
func TestStandardPartitionAlwaysValid(t *testing.T) {
	prop := func(seed int64, sizeSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := circuits.RandomLogic(circuits.Spec{
			Name: "p", Inputs: 8, Outputs: 3,
			Gates: 30 + rng.Intn(50), Depth: 5 + rng.Intn(5), Seed: seed,
		})
		if err != nil {
			return false
		}
		size := 1 + int(sizeSel%20)
		groups := StandardPartition(c, size, 10)
		seen := map[int]bool{}
		for _, grp := range groups {
			if len(grp) == 0 || len(grp) > size {
				return false
			}
			for _, g := range grp {
				if seen[g] {
					return false
				}
				seen[g] = true
			}
		}
		return len(seen) == c.NumLogicGates()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStandardPartitionDegenerateSizes(t *testing.T) {
	c := circuits.C17()
	groups := StandardPartition(c, 0, 0) // clamps to 1/1
	checkCover(t, c, groups)
	if len(groups) != 6 {
		t.Errorf("size 1: %d singleton groups, want 6", len(groups))
	}
	groups = StandardPartition(c, 100, 10)
	checkCover(t, c, groups)
	if len(groups) != 1 {
		t.Errorf("oversized module: %d groups, want 1", len(groups))
	}
}
