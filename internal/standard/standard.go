// Package standard implements the non-evolutionary partitioning pieces of
// the paper: the chain-based start-partition constructor of §4.2, the
// average-parameter module-size estimator used to seed it, and the greedy
// "standard partitioning" of §5 that serves as the baseline the evolution
// algorithm is compared against in Table 1.
package standard

import (
	"math"
	"math/rand"
	"sort"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
)

// EstimateModuleSize implements the §4.2 pre-pass: "first the appropriate
// module size is estimated ... by evaluating c₁ and c₂ by average numbers
// for the required parameters and by abstraction from structural
// information". It scans candidate sizes with a fully averaged model —
// every gate carries the mean peak current, leakage, resistance and
// capacitance, and a module of size s switches with the circuit's mean
// simultaneity — and returns the size minimising the averaged weighted
// cost, never exceeding the largest size the discriminability constraint
// d(M) ≥ d allows.
func EstimateModuleSize(e *estimate.Estimator, w partition.Weights, cons partition.Constraints) int {
	c := e.A.Circuit
	logic := c.LogicGates()
	n := len(logic)
	if n == 0 {
		return 1
	}
	var peakSum, leakSum, rgSum, coutSum, delaySum float64
	for _, g := range logic {
		peakSum += e.A.Peak[g]
		leakSum += e.A.LeakMax[g]
		rgSum += e.A.Rg[g]
		coutSum += e.A.Cout[g]
		delaySum += e.A.Delay[g]
	}
	fn := float64(n)
	peakAvg, leakAvg := peakSum/fn, leakSum/fn
	rgAvg, coutAvg, delayAvg := rgSum/fn, coutSum/fn, delaySum/fn

	// Mean simultaneity: what fraction of a group switches at the worst
	// grid instant, estimated from the whole circuit's activity profile.
	prof := e.TS.ActivityProfile(logic)
	maxAct := 0
	for _, v := range prof {
		if v > maxAct {
			maxAct = v
		}
	}
	phi := float64(maxAct) / fn
	if phi <= 0 {
		phi = 1 / fn
	}

	// The discriminability constraint caps the module size:
	// s·leakAvg ≤ IDDQ,th / d.
	sMax := int(e.P.IDDQth / (cons.MinDiscriminability * leakAvg))
	if sMax < 1 {
		sMax = 1
	}
	if sMax > n {
		sMax = n
	}

	best, bestCost := 1, math.Inf(1)
	for s := 1; s <= sMax; s++ {
		fs := float64(s)
		k := math.Ceil(fn / fs)
		iMax := phi * fs * peakAvg // averaged îDD,max of one module
		if iMax <= 0 {
			continue
		}
		rs := e.P.RailLimit / iMax
		area := k * (e.P.AreaA0 + e.P.AreaA1/rs)
		cs := e.P.CsSensor + fs*coutAvg
		nAct := phi * fs
		if nAct < 1 {
			nAct = 1
		}
		damp := 1 - math.Exp(-delayAvg/(rs*cs))
		c2 := nAct * rs / rgAvg * damp // averaged per-stage degradation ≈ overhead
		cost := w.Area*math.Log1p(area) + w.Delay*c2 + w.Modules*k
		if cost < bestCost {
			bestCost = cost
			best = s
		}
	}
	return best
}

// ChainStartPartition builds one §4.2 start partition: beginning at gates
// close to the primary inputs, chains are grown towards a primary output.
// A chain stops when it reaches a primary output, no free successor
// remains, or the maximum module size is reached. Because the evolution
// operators can merge but never create modules, a module keeps absorbing
// fresh chains (restarted from a free gate adjacent to it) until it
// reaches the target size, so the start population already has the module
// granularity the size estimator asked for. Chains are formed while free
// gates remain; different rng streams produce the different start
// partitions of the start population.
func ChainStartPartition(c *circuit.Circuit, maxModuleSize int, rng *rand.Rand) [][]int {
	if maxModuleSize < 1 {
		maxModuleSize = 1
	}
	levels := c.Levels()
	free := make(map[int]bool)
	var order []int
	for _, g := range c.LogicGates() {
		free[g] = true
		order = append(order, g)
	}
	// Chain starts are "as near to a primary input as possible".
	sort.Slice(order, func(i, j int) bool {
		if levels[order[i]] != levels[order[j]] {
			return levels[order[i]] < levels[order[j]]
		}
		return order[i] < order[j]
	})

	var groups [][]int
	for _, start := range order {
		if !free[start] {
			continue
		}
		module := []int{start}
		free[start] = false
		cur := start
		for len(module) < maxModuleSize {
			var nexts []int
			if !c.IsOutput(cur) {
				for _, f := range c.Gates[cur].Fanout {
					if free[f] {
						nexts = append(nexts, f)
					}
				}
			}
			if len(nexts) == 0 {
				// Chain ended (primary output or no free successor):
				// restart from a free gate adjacent to the module so the
				// module stays connected.
				nexts = adjacentFree(c, module, free)
				if len(nexts) == 0 {
					break
				}
			}
			cur = nexts[rng.Intn(len(nexts))]
			free[cur] = false
			module = append(module, cur)
		}
		sort.Ints(module)
		groups = append(groups, module)
	}
	return groups
}

// adjacentFree lists the free gates directly connected to the module, in
// deterministic order.
func adjacentFree(c *circuit.Circuit, module []int, free map[int]bool) []int {
	seen := map[int]bool{}
	var out []int
	for _, g := range module {
		for _, nb := range c.Neighbors(g) {
			if free[nb] && !seen[nb] {
				seen[nb] = true
				out = append(out, nb)
			}
		}
	}
	sort.Ints(out)
	return out
}

// StandardPartition implements the §5 baseline: "the process starts with
// a gate as near to a primary input as possible. New gates are added
// until a specified size of the module is generated. The new gate added
// is that gate whose path length to all the gates already clustered gives
// a minimum sum. If there are multiple choices, a gate of this set is
// selected such that the path lengths to all the gates not yet clustered
// give a maximum sum." Path lengths are undirected hop distances capped
// at rho (unreachable pairs count rho), matching the separation parameter.
func StandardPartition(c *circuit.Circuit, moduleSize, rho int) [][]int {
	if moduleSize < 1 {
		moduleSize = 1
	}
	if rho < 1 {
		rho = 1
	}
	levels := c.Levels()
	logic := c.LogicGates()
	free := make(map[int]bool, len(logic))
	for _, g := range logic {
		free[g] = true
	}

	// distTo returns hop distances from g capped at rho.
	distTo := func(g int) map[int]int { return c.BoundedDistances(g, rho) }
	capDist := func(d map[int]int, to int) int {
		if v, ok := d[to]; ok {
			return v
		}
		return rho
	}

	var groups [][]int
	for len(free) > 0 {
		// Start gate: free gate nearest a primary input (lowest level,
		// lowest ID breaks ties deterministically).
		start := -1
		for _, g := range logic {
			if !free[g] {
				continue
			}
			if start == -1 || levels[g] < levels[start] || (levels[g] == levels[start] && g < start) {
				start = g
			}
		}
		module := []int{start}
		delete(free, start)
		// distSum[g] accumulates Σ over clustered gates of dist(cl, g).
		distSum := make(map[int]float64, len(free))
		addDistances := func(from int) {
			d := distTo(from)
			for g := range free {
				distSum[g] += float64(capDist(d, g))
			}
		}
		addDistances(start)

		for len(module) < moduleSize && len(free) > 0 {
			// Minimum summed path length to the cluster.
			bestSum := math.Inf(1)
			var tied []int
			for g := range free {
				s := distSum[g]
				switch {
				case s < bestSum-1e-12:
					bestSum = s
					tied = tied[:0]
					tied = append(tied, g)
				case math.Abs(s-bestSum) <= 1e-12:
					tied = append(tied, g)
				}
			}
			sort.Ints(tied)
			next := tied[0]
			if len(tied) > 1 {
				// Tie-break: maximum summed path length to the gates not
				// yet clustered.
				bestOut := math.Inf(-1)
				for _, g := range tied {
					d := distTo(g)
					var out float64
					for h := range free {
						if h == g {
							continue
						}
						out += float64(capDist(d, h))
					}
					if out > bestOut {
						bestOut = out
						next = g
					}
				}
			}
			module = append(module, next)
			delete(free, next)
			delete(distSum, next)
			addDistances(next)
		}
		sort.Ints(module)
		groups = append(groups, module)
	}
	return groups
}

// StandardPartitionK runs StandardPartition with the module size that
// yields (approximately) k modules — Table 1 compares the methods at the
// module counts found by the evolution algorithm ("in our case we take
// the numbers obtained by the evolution based algorithm").
func StandardPartitionK(c *circuit.Circuit, k, rho int) [][]int {
	n := c.NumLogicGates()
	if k < 1 {
		k = 1
	}
	size := (n + k - 1) / k
	return StandardPartition(c, size, rho)
}
