package core

import (
	"errors"
	"strings"
	"testing"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partcheck"
)

// chaosParams is a small, fast evolution configuration for fault tests.
func chaosParams() *evolution.Params {
	return &evolution.Params{
		Mu: 4, Lambda: 3, Chi: 1, Omega: 6, MaxMove: 3, Epsilon: 1.0,
		MaxGenerations: 10, StallGenerations: 50, Seed: 3,
	}
}

func mustSchedule(t *testing.T, spec string) chaos.Schedule {
	t.Helper()
	sched, err := chaos.ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", spec, err)
	}
	return sched
}

// chaosCircuit is big enough that every generation actually evaluates
// descendants (C17 is so small most generations have no legal move, so
// one-shot after=N faults would never trigger).
func chaosCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuits.RandomLogic(circuits.Spec{
		Name: "chaos", Inputs: 8, Outputs: 4, Gates: 60, Depth: 8, Seed: 7,
	})
	if err != nil {
		t.Fatalf("RandomLogic: %v", err)
	}
	return c
}

func TestDegradeFallsBackToStandard(t *testing.T) {
	inj := chaos.New(mustSchedule(t, "seed=9,rate=1,sites=evolution.worker.panic"), nil)
	o := obs.New("degrade", nil, nil)
	res, err := Synthesize(circuits.C17(), Options{
		Evolution: chaosParams(),
		Obs:       o,
		Chaos:     inj,
		Degrade:   true,
	})
	if err != nil {
		t.Fatalf("Synthesize with Degrade: %v", err)
	}
	if !res.Degraded {
		t.Fatal("persistent worker panics with Degrade set: result not marked Degraded")
	}
	if !errors.Is(res.DegradedErr, chaos.ErrInjected) {
		t.Fatalf("DegradedErr lost the injected-fault chain: %v", res.DegradedErr)
	}
	if res.Evolution != nil {
		t.Fatal("degraded result must not carry an evolution trace")
	}
	if r := partcheck.VerifyPartition(res.Partition, partcheck.StructureOnly()); !r.OK() {
		t.Fatalf("degraded partition fails the static audit: %v", r.Err())
	}
	if fails := o.Counter(MetricOptimizerFailures).Value(); fails < 2 {
		t.Fatalf("expected >= 2 recorded optimizer failures, got %d", fails)
	}
	if o.Counter(MetricDegraded).Value() != 1 {
		t.Fatalf("MetricDegraded = %d, want 1", o.Counter(MetricDegraded).Value())
	}
	if deg, reason := o.Degraded(); !deg || reason == "" {
		t.Fatalf("Obs.Degraded() = %v, %q; want sticky flag with a reason", deg, reason)
	}
	if !strings.Contains(res.Report(), "DEGRADED") {
		t.Fatal("Report() of a degraded result does not say DEGRADED")
	}
}

func TestPersistentFaultWithoutDegradeFails(t *testing.T) {
	inj := chaos.New(mustSchedule(t, "seed=9,rate=1,sites=evolution.worker.panic"), nil)
	_, err := Synthesize(circuits.C17(), Options{
		Evolution: chaosParams(),
		Chaos:     inj,
	})
	if err == nil {
		t.Fatal("persistent worker panics without Degrade: expected an error")
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("error lost the injected-fault chain: %v", err)
	}
}

func TestRetryAfterTransientFaultIsBitIdentical(t *testing.T) {
	baseline, err := Synthesize(chaosCircuit(t), Options{Evolution: chaosParams()})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	// A one-shot fault kills the first attempt; the retry re-runs the
	// identical seeded optimization with the fault already spent.
	inj := chaos.New(mustSchedule(t, "seed=4,after=5,sites=evolution.worker.panic"), nil)
	o := obs.New("retry", nil, nil)
	res, err := Synthesize(chaosCircuit(t), Options{
		Evolution:        chaosParams(),
		Obs:              o,
		Chaos:            inj,
		OptimizerRetries: 1,
	})
	if err != nil {
		t.Fatalf("Synthesize with one-shot fault + retry: %v", err)
	}
	if res.Degraded {
		t.Fatal("retry recovered the run; result must not be Degraded")
	}
	if o.Counter(MetricOptimizerFailures).Value() != 1 {
		t.Fatalf("optimizer failures = %d, want exactly 1", o.Counter(MetricOptimizerFailures).Value())
	}
	if res.Evolution.BestCost != baseline.Evolution.BestCost ||
		res.Evolution.Generations != baseline.Evolution.Generations ||
		res.Evolution.Evaluations != baseline.Evolution.Evaluations {
		t.Fatalf("retried run diverged from baseline: cost %v vs %v, generations %d vs %d, evaluations %d vs %d",
			res.Evolution.BestCost, baseline.Evolution.BestCost,
			res.Evolution.Generations, baseline.Evolution.Generations,
			res.Evolution.Evaluations, baseline.Evolution.Evaluations)
	}
}

func TestPoisonedEstimatorDegrades(t *testing.T) {
	// estimate.nan with after=3 poisons one estimator call; with Degrade
	// set and the fault spent on attempt 1, the retry succeeds.
	inj := chaos.New(mustSchedule(t, "seed=2,after=3,sites=estimate.nan"), nil)
	res, err := Synthesize(chaosCircuit(t), Options{
		Evolution: chaosParams(),
		Chaos:     inj,
		Degrade:   true,
	})
	if err != nil {
		t.Fatalf("Synthesize with one-shot NaN + Degrade: %v", err)
	}
	if res.Degraded {
		t.Fatal("one-shot NaN should be absorbed by the retry, not degrade the run")
	}
}
