// Package core is the public face of iddqsyn: given a gate-level circuit
// and a characterised cell library, Synthesize partitions the circuit into
// BIC-sensor modules — with the paper's evolution-based algorithm or the
// baseline standard partitioning — sizes one Built-In Current sensor per
// module, and returns the complete IDDQ-testable design together with its
// cost breakdown.
//
// Typical use:
//
//	c, _ := bench.Read(f, "mydesign")
//	res, err := core.Synthesize(c, core.Options{})
//	fmt.Println(res.Report())
package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"iddqsyn/internal/bic"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/chaos"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partcheck"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
)

// Degradation telemetry: MetricOptimizerFailures counts failed optimizer
// attempts (each retry that did not produce a result), MetricDegraded is
// set to 1 when the synthesis fell back to standard partitioning.
const (
	MetricOptimizerFailures = "core.optimizer.failures"
	MetricDegraded          = "core.degraded"
)

// Method selects the partitioning algorithm.
type Method int

// The available partitioning methods.
const (
	// MethodEvolution is the paper's contribution: the §4 evolution-based
	// algorithm over the §3 estimators.
	MethodEvolution Method = iota
	// MethodStandard is the §5 baseline: greedy path-length clustering at
	// a fixed module size.
	MethodStandard
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodEvolution:
		return "evolution"
	case MethodStandard:
		return "standard"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures Synthesize. The zero value selects the paper's
// defaults everywhere: the built-in cell library, the §5 weight factors,
// d = 10, and the evolution method.
type Options struct {
	Library     *celllib.Library       // nil: celllib.Default()
	Params      *estimate.Params       // nil: estimate.DefaultParams()
	Weights     *partition.Weights     // nil: partition.PaperWeights()
	Constraints *partition.Constraints // nil: partition.DefaultConstraints()
	Evolution   *evolution.Params      // nil: evolution.DefaultParams()

	Method Method

	// ModuleSize fixes the module size for MethodStandard and for the
	// evolution start partitions. 0 estimates it from averaged parameters
	// (§4.2).
	ModuleSize int

	// Modules, if nonzero and Method is MethodStandard, overrides
	// ModuleSize so the standard partitioning produces this many modules
	// (Table 1 compares the methods at equal module counts).
	Modules int

	// Trace, if set, observes the best partition after every evolution
	// generation.
	Trace evolution.Trace

	// Control configures evolution run control: periodic crash-safe
	// checkpointing of the optimizer state. Only meaningful for
	// MethodEvolution.
	Control *evolution.Control

	// Resume, if set, continues a checkpointed evolution run instead of
	// constructing a fresh start population. The checkpoint must belong
	// to the circuit being synthesized; the evolution parameters are
	// taken from the checkpoint (Options.Evolution is ignored), so the
	// resumed run finishes bit-identically to an uninterrupted one.
	Resume *evolution.Checkpoint

	// Obs, if non-nil, observes the synthesis: phase spans (annotate,
	// estimator, optimize, audit, chip), estimator call telemetry, and
	// the optimizer's per-generation metrics, logs and live status. When
	// nil the Obs carried by the context (obs.FromContext) is used; if
	// that is also nil the synthesis is unobserved at zero cost.
	Obs *obs.Obs

	// Chaos, if non-nil, injects deterministic faults into the synthesis
	// failure surfaces — the estimator boundary and (through the
	// optimizer Control) the evolution worker pool. When nil the injector
	// carried by the context (chaos.FromContext) is used; if that is also
	// nil nothing is ever injected. Test plumbing only.
	Chaos *chaos.Injector

	// Degrade enables graceful degradation: when every optimizer attempt
	// fails (a poisoned estimator, persistent checkpoint I/O failure, a
	// worker panic storm), the synthesis falls back to greedy standard
	// partitioning instead of failing outright. The fallback result is
	// marked (Result.Degraded, Obs.SetDegraded, MetricDegraded) so it can
	// never masquerade as a converged optimization.
	Degrade bool

	// OptimizerRetries is how many times a failed evolution run is
	// retried before failing (or degrading, with Degrade set). Each
	// retry re-runs the identical seeded optimization, so a retry after a
	// transient fault reproduces the uninjected run bit-identically.
	// 0 means one retry when Degrade is set, none otherwise.
	OptimizerRetries int
}

// Result is a synthesized IDDQ-testable design.
type Result struct {
	Method    Method
	Circuit   *circuit.Circuit
	Annotated *celllib.Annotated
	Estimator *estimate.Estimator
	Partition *partition.Partition
	Chip      *bic.Chip
	Costs     partition.CostVector

	// Evolution holds the optimizer trace for MethodEvolution (nil for
	// the standard method).
	Evolution *evolution.Result

	// Degraded reports that the evolution optimizer failed every attempt
	// and the partition came from the greedy standard fallback instead.
	// DegradedErr preserves the optimizer's final error (its chain intact
	// for errors.Is), so the cause of the degradation stays diagnosable.
	Degraded    bool
	DegradedErr error
}

// Synthesize runs the full flow on circuit c.
func Synthesize(c *circuit.Circuit, opt Options) (*Result, error) {
	return SynthesizeContext(context.Background(), c, opt)
}

// SynthesizeContext is Synthesize with cooperative cancellation: the
// context is threaded into the optimizer, which checks it at generation
// boundaries. A cancelled synthesis still returns a complete Result —
// partition, sensors, costs — built from the optimizer's best-so-far
// individual, with Result.Evolution.Interrupted set.
func SynthesizeContext(ctx context.Context, c *circuit.Circuit, opt Options) (res *Result, err error) {
	// Last-resort containment: whatever a poisoned estimator or injected
	// fault manages to blow up, the synthesis ends with a named error —
	// never a process crash, never an unvalidated result.
	defer func() {
		if r := recover(); r != nil {
			res = nil
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("core: synthesis panicked: %w", perr)
			} else {
				err = fmt.Errorf("core: synthesis panicked: %v", r)
			}
		}
	}()
	o := opt.Obs
	if o == nil {
		o = obs.FromContext(ctx)
	}
	inj := opt.Chaos
	if inj == nil {
		inj = chaos.FromContext(ctx)
	}
	// The optimizer resolves its Obs and injector from the Control (or
	// its context); inject ours into a copy so the caller's struct stays
	// untouched.
	ctl := opt.Control
	if (o != nil && (ctl == nil || ctl.Obs == nil)) ||
		(inj != nil && (ctl == nil || ctl.Chaos == nil)) {
		cc := evolution.Control{}
		if ctl != nil {
			cc = *ctl
		}
		if cc.Obs == nil {
			cc.Obs = o
		}
		if cc.Chaos == nil {
			cc.Chaos = inj
		}
		ctl = &cc
	}
	lib := opt.Library
	if lib == nil {
		lib = celllib.Default()
	}
	prm := estimate.DefaultParams()
	if opt.Params != nil {
		prm = *opt.Params
	}
	w := partition.PaperWeights()
	if opt.Weights != nil {
		w = *opt.Weights
	}
	cons := partition.DefaultConstraints()
	if opt.Constraints != nil {
		cons = *opt.Constraints
	}
	eprm := evolution.DefaultParams()
	if opt.Evolution != nil {
		eprm = *opt.Evolution
	}

	// Causal-trace phases ride alongside the log spans: each core phase is
	// a child of the span the context carries (the serving layer's
	// serve.attempt), so a retained slow trace decomposes the attempt into
	// annotate / estimator / optimize / audit / chip. All nil-cheap when
	// the context carries no span.
	psp := obs.SpanFromContext(ctx)

	sp := o.StartSpan("core.annotate", "circuit", c.Name)
	tsp := psp.StartChild("core.annotate")
	a, err := celllib.Annotate(c, lib)
	tsp.End()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sp = o.StartSpan("core.estimator")
	tsp = psp.StartChild("core.estimator")
	e := estimate.New(a, prm)
	e.SetObs(o)
	e.SetChaos(inj)
	tsp.End()
	sp.End()

	res = &Result{Method: opt.Method, Circuit: c, Annotated: a, Estimator: e}
	optSpan := o.StartSpan("core.optimize", "method", opt.Method.String())
	optTsp := psp.StartChild("core.optimize")
	ctx = obs.ContextWithSpan(ctx, optTsp) // evolution generations attach here
	switch opt.Method {
	case MethodEvolution:
		attempts := 1 + opt.OptimizerRetries
		if opt.Degrade && opt.OptimizerRetries <= 0 {
			attempts = 2
		}
		var er *evolution.Result
		var optErr error
		for attempt := 1; attempt <= attempts; attempt++ {
			if attempt > 1 && ctx.Err() != nil {
				break // cancelled mid-retry: keep the last failure
			}
			er, optErr = runEvolution(ctx, c, e, w, cons, eprm, opt, ctl)
			if optErr == nil {
				break
			}
			o.Counter(MetricOptimizerFailures).Inc()
			o.Log().Warn("optimizer attempt failed",
				"attempt", attempt, "of", attempts, "err", optErr.Error())
		}
		switch {
		case optErr == nil:
			res.Evolution = er
			res.Partition = er.Best
		case opt.Degrade:
			p, serr := standardGroups(c, opt, prm, e, w, cons)
			if serr != nil {
				return nil, fmt.Errorf("core: optimizer failed (%w); standard fallback also failed: %w", optErr, serr)
			}
			res.Degraded = true
			res.DegradedErr = optErr
			res.Partition = p
			o.Counter(MetricDegraded).Inc()
			o.SetDegraded(optErr.Error())
			o.Log().Error("optimizer failed on every attempt: degraded to standard partitioning",
				"attempts", attempts, "err", optErr.Error())
		default:
			return nil, optErr
		}
	case MethodStandard:
		p, serr := standardGroups(c, opt, prm, e, w, cons)
		if serr != nil {
			return nil, serr
		}
		res.Partition = p
	default:
		return nil, fmt.Errorf("core: unknown method %v", opt.Method)
	}
	optTsp.End()
	optSpan.End("modules", res.Partition.NumModules())

	// Every synthesis result passes the static partition audit before it
	// is reported: exact cover, netlist consistency, and agreement of the
	// incrementally maintained module estimates with a from-scratch
	// evaluation. Feasibility bounds are the caller's policy (see
	// partcheck.Feasibility); a violated structural invariant here is a
	// bug, and the named constraint says which one.
	sp = o.StartSpan("core.audit")
	tsp = psp.StartChild("core.audit")
	r := partcheck.VerifyPartition(res.Partition, partcheck.StructureOnly())
	tsp.End()
	sp.End()
	if !r.OK() {
		return nil, fmt.Errorf("core: final partition fails the static audit: %w", r.Err())
	}
	res.Costs = res.Partition.Costs()
	sp = o.StartSpan("core.chip")
	tsp = psp.StartChild("core.chip")
	chip, err := bic.NewChip(a, res.Partition.Groups(), e)
	tsp.End()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Chip = chip
	o.Log().Info("synthesis complete",
		"circuit", c.Name, "method", opt.Method.String(),
		"modules", res.Partition.NumModules(),
		"cost", res.Partition.Cost(),
		"feasible", res.Partition.Feasible())
	return res, nil
}

// runEvolution runs one optimizer attempt — resume or fresh start — with
// panic containment: a panic anywhere in the attempt (start-population
// construction included) becomes an error with its chain intact, so the
// retry/degrade loop above can classify it with errors.Is.
func runEvolution(ctx context.Context, c *circuit.Circuit, e *estimate.Estimator,
	w partition.Weights, cons partition.Constraints, eprm evolution.Params,
	opt Options, ctl *evolution.Control) (er *evolution.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			er = nil
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("core: optimizer panicked: %w", perr)
			} else {
				err = fmt.Errorf("core: optimizer panicked: %v", r)
			}
		}
	}()
	if opt.Resume != nil {
		er, err = evolution.ResumeContext(ctx, opt.Resume, e, w, cons, opt.Trace, ctl)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		return er, nil
	}
	size := opt.ModuleSize
	if size <= 0 {
		size = standard.EstimateModuleSize(e, w, cons)
	}
	rng := rand.New(rand.NewSource(eprm.Seed))
	starts := make([]*partition.Partition, 0, eprm.Mu)
	// Deliberately not cancellable: a cancelled synthesis still
	// returns the best-so-far design, which requires the start
	// population to exist (see SynthesizeContext's contract).
	//lint:ignore ctxloop cancellation is handled at generation boundaries; aborting here would break the best-so-far contract
	for i := 0; i < eprm.Mu; i++ {
		p, perr := partition.New(e, standard.ChainStartPartition(c, size, rng), w, cons)
		if perr != nil {
			return nil, fmt.Errorf("core: start partition: %w", perr)
		}
		starts = append(starts, p)
	}
	er, err = evolution.OptimizeControlled(ctx, starts, eprm, opt.Trace, ctl)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return er, nil
}

// standardGroups builds the greedy standard partition — both the
// MethodStandard main path and the degraded-mode fallback — with panic
// containment so even a poisoned estimator yields a named error rather
// than a crash.
func standardGroups(c *circuit.Circuit, opt Options, prm estimate.Params,
	e *estimate.Estimator, w partition.Weights, cons partition.Constraints) (p *partition.Partition, err error) {
	defer func() {
		if r := recover(); r != nil {
			p = nil
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("core: standard partitioning panicked: %w", perr)
			} else {
				err = fmt.Errorf("core: standard partitioning panicked: %v", r)
			}
		}
	}()
	var groups [][]int
	if opt.Modules > 0 {
		groups = standard.StandardPartitionK(c, opt.Modules, prm.Rho)
	} else {
		size := opt.ModuleSize
		if size <= 0 {
			size = standard.EstimateModuleSize(e, w, cons)
		}
		groups = standard.StandardPartition(c, size, prm.Rho)
	}
	p, err = partition.New(e, groups, w, cons)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return p, nil
}

// Report renders a human-readable synthesis report: the partition, the
// per-module sensors, and the cost breakdown.
func (r *Result) Report() string {
	var sb strings.Builder
	cv := r.Costs
	fmt.Fprintf(&sb, "circuit %s — %s partitioning\n", r.Circuit.Name, r.Method)
	if r.Degraded {
		fmt.Fprintf(&sb, "  DEGRADED: optimizer failed, fell back to standard partitioning (%v)\n", r.DegradedErr)
	}
	fmt.Fprintf(&sb, "  gates: %d  modules: %d  feasible: %v (worst d = %.1f, required %.1f)\n",
		r.Circuit.NumLogicGates(), r.Partition.NumModules(), r.Partition.Feasible(),
		r.Partition.WorstDiscriminability(), r.Partition.Cons.MinDiscriminability)
	fmt.Fprintf(&sb, "  sensor area: %.4g   delay: +%.3g%%   test time: +%.3g%%   separation: %d\n",
		cv.SensorArea, 100*cv.DelayOverhead, 100*cv.TestTime, cv.Separation)
	fmt.Fprintf(&sb, "  weighted cost C(Π) = %.6g\n", r.Partition.Cost())
	if r.Evolution != nil {
		note := ""
		if r.Evolution.Interrupted {
			note = " (interrupted — best-so-far result)"
		}
		fmt.Fprintf(&sb, "  evolution: %d generations, %d evaluations%s\n",
			r.Evolution.Generations, r.Evolution.Evaluations, note)
	}
	for mi := range r.Chip.Sensors {
		s := &r.Chip.Sensors[mi]
		m := r.Partition.ModuleEstimate(mi)
		fmt.Fprintf(&sb, "  module %2d: %4d gates  îDD=%.3gmA  Ron=%.3gΩ  area=%.4g  d=%.1f\n",
			mi, len(r.Partition.ModuleGates(mi)), 1e3*s.IDDMax, s.ROn, s.Area,
			m.Discriminability(r.Estimator.P.IDDQth))
	}
	return sb.String()
}
