package core

import (
	"context"
	"strings"
	"testing"

	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partition"
)

func TestSynthesizeC17Evolution(t *testing.T) {
	res, err := Synthesize(circuits.C17(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodEvolution {
		t.Error("default method should be evolution")
	}
	if res.Partition == nil || res.Chip == nil || res.Evolution == nil {
		t.Fatal("incomplete result")
	}
	if err := res.Partition.Verify(); err != nil {
		t.Errorf("partition invariants: %v", err)
	}
	if !res.Partition.Feasible() {
		t.Error("result must be feasible")
	}
	if len(res.Chip.Sensors) != res.Partition.NumModules() {
		t.Error("one sensor per module")
	}
}

func TestSynthesizeStandard(t *testing.T) {
	res, err := Synthesize(circuits.C17(), Options{Method: MethodStandard, ModuleSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evolution != nil {
		t.Error("standard method must not carry an evolution result")
	}
	if res.Partition.NumModules() != 2 {
		t.Errorf("modules = %d, want 2", res.Partition.NumModules())
	}
}

func TestSynthesizeStandardAtK(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	res, err := Synthesize(c, Options{Method: MethodStandard, Modules: 4})
	if err != nil {
		t.Fatal(err)
	}
	k := res.Partition.NumModules()
	if k < 4 || k > 6 {
		t.Errorf("modules = %d, want ≈4", k)
	}
}

func TestSynthesizeEvolutionBeatsStandardOnCost(t *testing.T) {
	// The headline claim, on a mid-size circuit: at comparable module
	// counts, the evolution result has lower weighted cost.
	c := circuits.MustISCAS85Like("c432")
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = 120
	eprm.StallGenerations = 30
	evo, err := Synthesize(c, Options{Evolution: &eprm})
	if err != nil {
		t.Fatal(err)
	}
	std, err := Synthesize(c, Options{Method: MethodStandard, Modules: evo.Partition.NumModules()})
	if err != nil {
		t.Fatal(err)
	}
	if evo.Partition.Cost() > std.Partition.Cost() {
		t.Errorf("evolution cost %.6g worse than standard %.6g",
			evo.Partition.Cost(), std.Partition.Cost())
	}
	t.Logf("c432: evolution C=%.6g (K=%d) vs standard C=%.6g (K=%d)",
		evo.Partition.Cost(), evo.Partition.NumModules(),
		std.Partition.Cost(), std.Partition.NumModules())
}

func TestSynthesizeCustomWeights(t *testing.T) {
	// Heavily weighting module count must not increase the number of
	// modules relative to the area-focused default.
	w := partition.PaperWeights()
	w.Modules = 1e7
	res, err := Synthesize(circuits.C17(), Options{Weights: &w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.NumModules() != 1 {
		t.Errorf("with huge α5, K = %d, want 1", res.Partition.NumModules())
	}
}

func TestSynthesizeUnknownMethod(t *testing.T) {
	if _, err := Synthesize(circuits.C17(), Options{Method: Method(9)}); err == nil {
		t.Error("want error for unknown method")
	}
}

func TestMethodString(t *testing.T) {
	if MethodEvolution.String() != "evolution" || MethodStandard.String() != "standard" {
		t.Error("Method.String mismatch")
	}
	if Method(9).String() != "Method(9)" {
		t.Error("out-of-range Method.String")
	}
}

func TestReport(t *testing.T) {
	res, err := Synthesize(circuits.C17(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{"circuit c17", "modules:", "sensor area", "module  0"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTraceForwarded(t *testing.T) {
	calls := 0
	_, err := Synthesize(circuits.C17(), Options{
		Trace: func(gen int, best *partition.Partition, bestCost float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("trace not forwarded to the optimizer")
	}
}

// TestSynthesizeObserved is the end-to-end observability smoke test: a
// pipeline run with Options.Obs set must leave the phase spans and the
// optimizer's counters in the registry and the final status published.
func TestSynthesizeObserved(t *testing.T) {
	o := obs.New("r-core", nil, nil)
	res, err := Synthesize(circuits.C17(), Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	s := o.Registry().Snapshot()
	for _, span := range []string{
		"span.core.annotate.seconds",
		"span.core.estimator.seconds",
		"span.core.optimize.seconds",
		"span.core.audit.seconds",
		"span.core.chip.seconds",
	} {
		if s.Histograms[span].Count != 1 {
			t.Errorf("%s Count = %d, want 1 (one span per phase)", span, s.Histograms[span].Count)
		}
	}
	if s.Counters[evolution.MetricEvaluations] == 0 {
		t.Error("optimizer counters missing: Options.Obs was not threaded into the evolution run")
	}
	if s.Counters[estimate.MetricEvalModuleCalls] == 0 {
		t.Error("estimator counters missing: Options.Obs was not threaded into the estimator")
	}
	if st, ok := o.Status().(evolution.RunStatus); !ok || st.BestCost != res.Evolution.BestCost {
		t.Errorf("published status = %+v, want final RunStatus of the run", o.Status())
	}
}

// TestSynthesizeObservedViaContext checks the second carriage path: an
// Obs threaded through the context (as the experiment drivers do) must
// reach the optimizer without Options.Obs being set.
func TestSynthesizeObservedViaContext(t *testing.T) {
	o := obs.New("r-ctx", nil, nil)
	ctx := obs.NewContext(context.Background(), o)
	if _, err := SynthesizeContext(ctx, circuits.C17(), Options{}); err != nil {
		t.Fatal(err)
	}
	if o.Registry().Snapshot().Counters[evolution.MetricEvaluations] == 0 {
		t.Error("context-carried Obs did not reach the evolution run")
	}
}
