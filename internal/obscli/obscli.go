// Package obscli wires the shared observability surface of the iddqsyn
// binaries: the -debug-addr, -metrics, -log-format and -log-level flags,
// the per-invocation Obs they configure, the live introspection server,
// and the -metrics run-snapshot file written when the command finishes.
// Every binary gets identical flag semantics from one Register/Start/
// Finish triple instead of hand-rolled plumbing.
package obscli

import (
	"context"
	"flag"
	"io"
	"time"

	"iddqsyn/internal/obs"
)

// closeTimeout bounds the graceful drain of the debug server at exit.
const closeTimeout = 5 * time.Second

// Config holds the parsed observability flags of one binary.
type Config struct {
	DebugAddr string
	Metrics   string
	LogFormat string
	LogLevel  string

	// TraceSlowest arms causal tracing retaining the K slowest completed
	// traces (0 = tracing off). Binaries that want tracing on by default
	// (iddqserve) pre-set the field before Register so the flag's default
	// reflects it.
	TraceSlowest int

	// Verbose forces debug-level logging (the iddqpart -v shorthand).
	Verbose bool
}

// Register installs the shared observability flags into fs.
func (c *Config) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.DebugAddr, "debug-addr", "",
		"serve live introspection (expvar, pprof, /runz) on this address, e.g. :6060")
	fs.StringVar(&c.Metrics, "metrics", "",
		"write the run's metrics snapshot to this JSON file when the command finishes")
	fs.StringVar(&c.LogFormat, "log-format", "text",
		"structured log encoding: text or json")
	fs.StringVar(&c.LogLevel, "log-level", "warn",
		"structured log threshold: debug, info, warn or error")
	fs.IntVar(&c.TraceSlowest, "trace-slowest", c.TraceSlowest,
		"retain causal traces for the K slowest requests (0 disables tracing; see /tracez)")
}

// Run is one observed CLI invocation: the Obs to thread into the flow
// plus the debug server and snapshot file the flags asked for.
type Run struct {
	Obs *obs.Obs

	srv         *obs.Server
	metricsPath string
}

// Start resolves the parsed flags into a live Run: a fresh Obs with a
// minted run ID, a structured logger on w, and — when -debug-addr is set
// — the bound introspection server. Call Finish when the command is done.
func (c *Config) Start(w io.Writer) (*Run, error) {
	lvl, err := obs.ParseLevel(c.LogLevel)
	if err != nil {
		return nil, err
	}
	if c.Verbose {
		lvl = obs.LevelDebug
	}
	format, err := obs.ParseFormat(c.LogFormat)
	if err != nil {
		return nil, err
	}
	o := obs.New(obs.NewRunID(), nil, obs.NewLogger(w, format, lvl))
	if c.TraceSlowest > 0 {
		o.SetTracer(obs.NewTracer(obs.TracerConfig{Slowest: c.TraceSlowest}))
	}
	r := &Run{Obs: o, metricsPath: c.Metrics}
	if c.DebugAddr != "" {
		srv, err := obs.Serve(c.DebugAddr, o)
		if err != nil {
			return nil, err
		}
		r.srv = srv
	}
	return r, nil
}

// Addr returns the debug server's bound address ("" when none runs).
func (r *Run) Addr() string {
	if r == nil {
		return ""
	}
	return r.srv.Addr()
}

// Finish ends the invocation: the -metrics snapshot is written (also for
// failed runs — the telemetry of a failure is evidence) and the debug
// server drains gracefully with a bounded timeout. The first error wins;
// both steps always run.
func (r *Run) Finish(circuit string) error {
	if r == nil {
		return nil
	}
	var firstErr error
	if r.metricsPath != "" {
		if err := obs.NewRunSnapshot(r.Obs, circuit).WriteFile(r.metricsPath); err != nil {
			firstErr = err
		}
	}
	if r.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
		defer cancel()
		if err := r.srv.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
