package verilog

import (
	"strings"
	"testing"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/techmap"
)

func TestWriteC17(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, circuits.C17()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"module c17(", "input I1, I2, I3, I4, I5;", "output g5, g6;",
		"wire g1, g2, g3, g4;", "nand ", "endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTripC17(t *testing.T) {
	c1 := circuits.C17()
	var sb strings.Builder
	if err := Write(&sb, c1); err != nil {
		t.Fatal(err)
	}
	c2, err := Read(strings.NewReader(sb.String()), "x")
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, sb.String())
	}
	if c2.Name != "c17" {
		t.Errorf("name = %q", c2.Name)
	}
	if bench.Fingerprint(c1) != bench.Fingerprint(c2) {
		t.Error("round trip changed the structure")
	}
}

func TestRoundTripBenchmarks(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		c1 := circuits.MustISCAS85Like(name)
		var sb strings.Builder
		if err := Write(&sb, c1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := Read(strings.NewReader(sb.String()), "x")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Names may be sanitised; verify functional equivalence instead
		// of structural fingerprints. Input/output names survive for the
		// generator's identifier-safe names, so the checker can map them.
		if err := techmap.VerifyEquivalent(c1, c2, 64, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSanitizeCollisions(t *testing.T) {
	// Names that sanitise identically must get distinct identifiers.
	b := circuit.NewBuilder("x")
	b.AddInput("a.1")
	b.AddInput("a_1")
	b.AddGate("y", circuit.And, "a.1", "a_1")
	b.MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a_1") || !strings.Contains(out, "a_1_1") {
		t.Errorf("collision not resolved:\n%s", out)
	}
	if _, err := Read(strings.NewReader(out), "x"); err != nil {
		t.Errorf("collision output does not parse back: %v", err)
	}
}

func TestSanitizeLeadingDigit(t *testing.T) {
	b := circuit.NewBuilder("9weird")
	b.AddInput("1in")
	b.AddGate("2out", circuit.Not, "1in")
	b.MarkOutput("2out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), " 1in") || strings.Contains(sb.String(), "(1in") {
		t.Errorf("leading digit not sanitised:\n%s", sb.String())
	}
	if _, err := Read(strings.NewReader(sb.String()), "x"); err != nil {
		t.Errorf("sanitised module does not parse: %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no module":    "input a;\noutput y;\nnot g1(y, a);\n",
		"unsupported":  "module m(a, y);\ninput a;\noutput y;\nmux g1(y, a, a);\nendmodule\n",
		"malformed":    "module m(a, y);\ninput a;\noutput y;\nnot g1 y a;\nendmodule\n",
		"one terminal": "module m(a, y);\ninput a;\noutput y;\nnot g1(y);\nendmodule\n",
		"unnamed":      "module (a, y);\ninput a;\noutput y;\nnot g1(y, a);\nendmodule\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), "x"); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadIgnoresCommentsAndWhitespace(t *testing.T) {
	src := `// header comment
module m(a, b, y); // ports
  input a, b;
  output y;
  // a gate below
  nand g1(y, a, b);
endmodule
`
	c, err := Read(strings.NewReader(src), "x")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 1 || c.Name != "m" {
		t.Errorf("parsed %v", c)
	}
}
