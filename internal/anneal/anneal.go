// Package anneal provides the comparison optimizers the paper lists as
// alternatives for PART-IDDQ ("a variety of algorithms has been proposed
// for such kind of problems (force-driven, simulated annealing, Monte
// Carlo, genetic, e.g.)", §4): a simulated-annealing partitioner and a
// zero-temperature greedy hill climber. Both operate on the same
// partition moves as the evolution strategy, so the three optimizers are
// directly comparable — the experiments use them to show that the
// evolution strategy's Monte-Carlo descendants and lifetime-limited
// selection earn their keep against simpler local search.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partition"
)

// contain converts a panic escaping an optimizer body into an error (the
// same containment the evolution worker pool applies per descendant).
// Error-valued panics — the estimator's numeric guards, injected faults —
// are wrapped rather than stringified so errors.Is sees through the
// recover boundary. Used as: defer contain(&err, "annealing").
func contain(err *error, optimizer string) {
	r := recover()
	if r == nil {
		return
	}
	if perr, ok := r.(error); ok {
		*err = fmt.Errorf("anneal: %s panicked: %w", optimizer, perr)
	} else {
		*err = fmt.Errorf("anneal: %s panicked: %v", optimizer, r)
	}
}

// checkFinite rejects a NaN/Inf move cost: a poisoned estimate must stop
// the run with a named error instead of silently steering acceptance.
func checkFinite(cost float64, moves int) error {
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("anneal: move %d cost is %g: %w", moves, cost, partition.ErrNonFiniteCost)
	}
	return nil
}

// Params configures the annealing schedule.
type Params struct {
	// InitialTemp sets T₀. Zero selects it automatically from the cost
	// scale of random moves (a standard calibration pass).
	InitialTemp float64
	// Cooling is the geometric cooling factor per epoch, in (0, 1).
	Cooling float64
	// MovesPerEpoch is the number of attempted moves at each temperature.
	MovesPerEpoch int
	// MinTemp ends the schedule.
	MinTemp float64
	// MaxMoves bounds the total number of attempted moves.
	MaxMoves int
	Seed     int64
}

// DefaultParams returns a schedule that converges on the benchmark
// circuits in time comparable to the evolution strategy's budget.
func DefaultParams() Params {
	return Params{
		Cooling:       0.92,
		MovesPerEpoch: 400,
		MinTemp:       1e-4,
		MaxMoves:      200000,
		Seed:          1,
	}
}

func (p Params) validate() error {
	switch {
	case p.Cooling <= 0 || p.Cooling >= 1:
		return fmt.Errorf("anneal: cooling factor must be in (0,1)")
	case p.MovesPerEpoch < 1:
		return fmt.Errorf("anneal: moves per epoch must be >= 1")
	case p.MinTemp <= 0:
		return fmt.Errorf("anneal: minimum temperature must be positive")
	case p.MaxMoves < 1:
		return fmt.Errorf("anneal: move budget must be >= 1")
	case p.InitialTemp < 0:
		return fmt.Errorf("anneal: negative initial temperature")
	}
	return nil
}

// Result reports an annealing or hill-climbing run.
type Result struct {
	Best     *partition.Partition
	BestCost float64
	Moves    int // attempted moves
	Accepted int

	// Interrupted reports that the run was cancelled and Best holds the
	// best-so-far partition rather than a converged one. Err then wraps
	// the context's error; interruption is not a failure, so the
	// optimizer's error return stays nil.
	Interrupted bool
	Err         error
}

// interrupt marks the result best-so-far and wraps the context error.
func (r *Result) interrupt(ctxErr error, optimizer string) {
	r.Interrupted = true
	r.Err = fmt.Errorf("anneal: %s interrupted after %d moves: %w", optimizer, r.Moves, ctxErr)
}

// penalised returns the cost with the same graded infeasibility penalty
// the evolution strategy uses, so the optimizers chase the same landscape.
//
//lint:hotpath anneal move loop cost — evaluated once per candidate move
func penalised(p *partition.Partition) float64 {
	c := p.Cost()
	if worst := p.WorstDiscriminability(); worst < p.Cons.MinDiscriminability {
		c += 1e9 * (1 + math.Log(p.Cons.MinDiscriminability/worst))
	}
	return c
}

// moveBuf holds the reusable buffers of randomMove. One buffer serves a
// whole optimizer run; the slices never escape a single call.
type moveBuf struct {
	gates   []int  // boundary gates of the source module
	targets []int  // legal target modules of one gate
	one     [1]int // single-gate argument for MoveGates
}

// randomMove applies one random boundary-gate move in place and returns
// false if the partition has no legal move.
//
//lint:hotpath anneal/hill-climb move generator — one call per candidate move
func randomMove(p *partition.Partition, rng *rand.Rand, sc *moveBuf) bool {
	if p.NumModules() < 2 {
		return false
	}
	for attempt := 0; attempt < 8; attempt++ {
		src := rng.Intn(p.NumModules())
		boundary := p.AppendBoundaryGates(sc.gates[:0], src)
		sc.gates = boundary[:0]
		if len(boundary) == 0 {
			continue
		}
		g := boundary[rng.Intn(len(boundary))]
		targets := p.AppendConnectedModules(sc.targets[:0], g)
		sc.targets = targets[:0]
		if len(targets) == 0 {
			continue
		}
		sc.one[0] = g
		if _, err := p.MoveGates(sc.one[:], src, targets[rng.Intn(len(targets))]); err == nil {
			return true
		}
	}
	return false
}

// Anneal runs simulated annealing from the start partition. The start is
// not modified.
func Anneal(start *partition.Partition, prm Params) (*Result, error) {
	return AnnealContext(context.Background(), start, prm)
}

// AnnealContext is Anneal with cooperative cancellation: the context is
// checked at every temperature-epoch boundary, and a cancelled run
// returns the best-so-far Result with Interrupted set (and a nil error)
// instead of discarding the work done so far. A panic inside the move
// loop (an estimator numeric guard, an injected fault) is contained into
// an error; non-finite move costs end the run with an error wrapping
// partition.ErrNonFiniteCost. Both keep the best-so-far Result when one
// exists.
func AnnealContext(ctx context.Context, start *partition.Partition, prm Params) (res *Result, err error) {
	defer contain(&err, "annealing")
	if err := prm.validate(); err != nil {
		return nil, err
	}
	inj := chaos.FromContext(ctx)
	// Telemetry from the context; every handle is nil (and every record a
	// no-op) on unobserved runs.
	o := obs.FromContext(ctx)
	log := o.Log()
	moves := o.Counter(MetricMoves)
	accepted := o.Counter(MetricAccepted)
	epochs := o.Counter(MetricEpochs)
	tempG := o.Gauge(MetricTemperatureGauge)
	bestG := o.Gauge(MetricBestCostGauge)

	rng := rand.New(rand.NewSource(prm.Seed))
	cur := start.Clone()
	curCost := penalised(cur)
	res = &Result{Best: cur.Clone(), BestCost: curCost}
	var mb moveBuf

	temp := prm.InitialTemp
	if temp == 0 {
		temp = calibrateTemp(cur, curCost, rng, &mb)
	}
	log.Info("anneal run begin",
		"circuit", start.E.A.Circuit.Name, "initial_temp", temp,
		"cooling", prm.Cooling, "max_moves", prm.MaxMoves, "seed", prm.Seed)
	bestG.Set(res.BestCost)

	for temp > prm.MinTemp && res.Moves < prm.MaxMoves {
		if err := ctx.Err(); err != nil {
			res.interrupt(err, "annealing")
			log.Warn("anneal run interrupted",
				"moves", res.Moves, "best_cost", res.BestCost)
			return res, nil
		}
		for i := 0; i < prm.MovesPerEpoch && res.Moves < prm.MaxMoves; i++ {
			cand := cur.Clone()
			if !randomMove(cand, rng, &mb) {
				res.Moves = prm.MaxMoves
				break
			}
			res.Moves++
			moves.Inc()
			inj.MustPass(chaos.SiteAnnealPanic)
			inj.Sleep(chaos.SiteAnnealDelay)
			candCost := penalised(cand)
			if err := checkFinite(candCost, res.Moves); err != nil {
				return res, err
			}
			delta := candCost - curCost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur, curCost = cand, candCost
				res.Accepted++
				accepted.Inc()
				if curCost < res.BestCost {
					res.BestCost = curCost
					res.Best = cur.Clone()
					bestG.Set(curCost)
				}
			}
		}
		epochs.Inc()
		tempG.Set(temp)
		log.Debug("anneal epoch",
			"temp", temp, "moves", res.Moves,
			"accepted", res.Accepted, "best_cost", res.BestCost)
		temp *= prm.Cooling
	}
	log.Info("anneal run end",
		"moves", res.Moves, "accepted", res.Accepted, "best_cost", res.BestCost)
	return res, nil
}

// calibrateTemp samples random moves and sets T₀ so an average uphill
// move is accepted with probability ≈ 0.8 (the classic Kirkpatrick
// initialisation).
func calibrateTemp(p *partition.Partition, baseCost float64, rng *rand.Rand, mb *moveBuf) float64 {
	var upSum float64
	ups := 0
	for i := 0; i < 24; i++ {
		cand := p.Clone()
		if !randomMove(cand, rng, mb) {
			break
		}
		if d := penalised(cand) - baseCost; d > 0 {
			upSum += d
			ups++
		}
	}
	if ups == 0 {
		return 1.0
	}
	return (upSum / float64(ups)) / -math.Log(0.8)
}

// HillClimb runs zero-temperature greedy local search: only improving
// moves are accepted; the search stops after `patience` consecutive
// rejected moves or when the move budget is exhausted. It is the
// strawman the §4 Monte-Carlo descendants are designed to beat.
func HillClimb(start *partition.Partition, maxMoves, patience int, seed int64) (*Result, error) {
	return HillClimbContext(context.Background(), start, maxMoves, patience, seed)
}

// hillClimbCheckEvery is how many attempted moves pass between two
// cancellation checks of HillClimbContext (the climber has no epochs, so
// the check runs on a fixed move cadence).
const hillClimbCheckEvery = 64

// HillClimbContext is HillClimb with cooperative cancellation (see
// AnnealContext; the context is checked every hillClimbCheckEvery moves).
// Panics in the move loop are contained into errors and non-finite move
// costs are rejected, exactly as in AnnealContext.
func HillClimbContext(ctx context.Context, start *partition.Partition, maxMoves, patience int, seed int64) (res *Result, err error) {
	defer contain(&err, "hill climb")
	if maxMoves < 1 || patience < 1 {
		return nil, fmt.Errorf("anneal: hill climb needs positive budgets")
	}
	inj := chaos.FromContext(ctx)
	o := obs.FromContext(ctx)
	log := o.Log()
	moves := o.Counter(MetricHillClimbMoves)
	accepted := o.Counter(MetricHillClimbAccepted)
	bestG := o.Gauge(MetricHillClimbBestCostGauge)

	rng := rand.New(rand.NewSource(seed))
	cur := start.Clone()
	curCost := penalised(cur)
	res = &Result{Best: cur.Clone(), BestCost: curCost}
	log.Info("hill climb begin",
		"circuit", start.E.A.Circuit.Name, "max_moves", maxMoves,
		"patience", patience, "seed", seed)
	bestG.Set(res.BestCost)
	rejected := 0
	var mb moveBuf
	for res.Moves < maxMoves && rejected < patience {
		if res.Moves%hillClimbCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				res.interrupt(err, "hill climb")
				log.Warn("hill climb interrupted",
					"moves", res.Moves, "best_cost", res.BestCost)
				return res, nil
			}
		}
		cand := cur.Clone()
		if !randomMove(cand, rng, &mb) {
			break
		}
		res.Moves++
		moves.Inc()
		inj.MustPass(chaos.SiteAnnealPanic)
		inj.Sleep(chaos.SiteAnnealDelay)
		candCost := penalised(cand)
		if err := checkFinite(candCost, res.Moves); err != nil {
			return res, err
		}
		if candCost < curCost {
			cur, curCost = cand, candCost
			res.Accepted++
			accepted.Inc()
			rejected = 0
			if curCost < res.BestCost {
				res.BestCost = curCost
				res.Best = cur.Clone()
				bestG.Set(curCost)
			}
		} else {
			rejected++
		}
	}
	log.Info("hill climb end",
		"moves", res.Moves, "accepted", res.Accepted, "best_cost", res.BestCost)
	return res, nil
}
