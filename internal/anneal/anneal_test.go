package anneal

import (
	"context"
	"errors"
	"strings"

	"math/rand"
	"testing"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/chaos"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
)

func startPartition(t *testing.T, name string, size int) *partition.Partition {
	t.Helper()
	c := circuits.MustISCAS85Like(name)
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	e := estimate.New(a, estimate.DefaultParams())
	groups := standard.ChainStartPartition(c, size, rand.New(rand.NewSource(1)))
	p, err := partition.New(e, groups, partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Cooling: 0, MovesPerEpoch: 1, MinTemp: 1, MaxMoves: 1},
		{Cooling: 1, MovesPerEpoch: 1, MinTemp: 1, MaxMoves: 1},
		{Cooling: 0.9, MovesPerEpoch: 0, MinTemp: 1, MaxMoves: 1},
		{Cooling: 0.9, MovesPerEpoch: 1, MinTemp: 0, MaxMoves: 1},
		{Cooling: 0.9, MovesPerEpoch: 1, MinTemp: 1, MaxMoves: 0},
		{Cooling: 0.9, MovesPerEpoch: 1, MinTemp: 1, MaxMoves: 1, InitialTemp: -1},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if err := DefaultParams().validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestAnnealImproves(t *testing.T) {
	start := startPartition(t, "c432", 8)
	startCost := start.Cost()
	prm := DefaultParams()
	prm.MaxMoves = 4000
	res, err := Anneal(start, prm)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= startCost {
		t.Errorf("no improvement: %g -> %g", startCost, res.BestCost)
	}
	if err := res.Best.Verify(); err != nil {
		t.Errorf("invariants: %v", err)
	}
	if res.Accepted == 0 || res.Moves == 0 {
		t.Error("no moves recorded")
	}
}

func TestAnnealDoesNotMutateStart(t *testing.T) {
	start := startPartition(t, "c432", 8)
	before := start.Cost()
	k := start.NumModules()
	prm := DefaultParams()
	prm.MaxMoves = 500
	if _, err := Anneal(start, prm); err != nil {
		t.Fatal(err)
	}
	if start.Cost() != before || start.NumModules() != k {
		t.Error("Anneal mutated its start partition")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	prm := DefaultParams()
	prm.MaxMoves = 1500
	r1, err := Anneal(startPartition(t, "c432", 8), prm)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Anneal(startPartition(t, "c432", 8), prm)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestCost != r2.BestCost || r1.Accepted != r2.Accepted {
		t.Error("annealing must be deterministic for a fixed seed")
	}
}

func TestAnnealRespectsBudget(t *testing.T) {
	prm := DefaultParams()
	prm.MaxMoves = 100
	res, err := Anneal(startPartition(t, "c432", 8), prm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves > 100 {
		t.Errorf("moves = %d, budget 100", res.Moves)
	}
}

func TestAnnealSingleModule(t *testing.T) {
	// A single-module partition has no moves: the result is the start.
	c := circuits.C17()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	e := estimate.New(a, estimate.DefaultParams())
	p, err := partition.New(e, [][]int{c.LogicGates()},
		partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams()
	prm.MaxMoves = 50
	res, err := Anneal(p, prm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 {
		t.Error("no move should be possible")
	}
	if res.BestCost != p.Cost() {
		t.Error("best must equal the start")
	}
}

func TestHillClimbImproves(t *testing.T) {
	start := startPartition(t, "c432", 8)
	startCost := start.Cost()
	res, err := HillClimb(start, 3000, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= startCost {
		t.Errorf("no improvement: %g -> %g", startCost, res.BestCost)
	}
	if err := res.Best.Verify(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestHillClimbNeverAcceptsWorse(t *testing.T) {
	start := startPartition(t, "c432", 8)
	res, err := HillClimb(start, 2000, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hill climbing's best IS its current: re-evaluating the returned
	// partition must give the recorded cost.
	if got := res.Best.Cost(); got != res.BestCost {
		t.Errorf("best cost %g, partition says %g", res.BestCost, got)
	}
}

func TestHillClimbBadArgs(t *testing.T) {
	start := startPartition(t, "c432", 8)
	if _, err := HillClimb(start, 0, 10, 1); err == nil {
		t.Error("want error for zero budget")
	}
	if _, err := HillClimb(start, 10, 0, 1); err == nil {
		t.Error("want error for zero patience")
	}
}

// The comparison the experiments run: annealing with a decent budget
// should land in the same cost region as hill climbing or better —
// and both must produce valid, feasible partitions.
func TestOptimizersProduceFeasible(t *testing.T) {
	start := startPartition(t, "c432", 8)
	prm := DefaultParams()
	prm.MaxMoves = 3000
	sa, err := Anneal(start, prm)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HillClimb(start, 3000, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"anneal": sa, "hillclimb": hc} {
		if !r.Best.Feasible() {
			t.Errorf("%s: infeasible result", name)
		}
	}
}

// An injected move-loop panic — the same class as an estimator numeric
// guard firing — must be contained into an error that keeps its chain
// (chaos.ErrInjected here), with the best-so-far partition preserved.
func TestInjectedPanicContained(t *testing.T) {
	start := startPartition(t, "c432", 8)
	sched, err := chaos.ParseSchedule("seed=1,after=20,sites=anneal.move.panic")
	if err != nil {
		t.Fatal(err)
	}
	ctx := chaos.NewContext(context.Background(), chaos.New(sched, nil))
	prm := DefaultParams()
	prm.MaxMoves = 4000
	res, aerr := AnnealContext(ctx, start, prm)
	if aerr == nil {
		t.Fatal("injected panic must surface as an error")
	}
	if !errors.Is(aerr, chaos.ErrInjected) {
		t.Errorf("contained error %v lost chaos.ErrInjected from its chain", aerr)
	}
	if !strings.Contains(aerr.Error(), "panicked") {
		t.Errorf("error %q should say the move loop panicked", aerr)
	}
	if res == nil || res.Best == nil {
		t.Error("containment must keep the best-so-far result")
	}

	// The hill climber shares the containment.
	hres, herr := HillClimbContext(ctx2(t), start, 4000, 400, 1)
	if herr == nil || !errors.Is(herr, chaos.ErrInjected) {
		t.Errorf("hill climb: err = %v, want wrapped chaos.ErrInjected", herr)
	}
	if hres == nil || hres.Best == nil {
		t.Error("hill climb containment must keep the best-so-far result")
	}
}

// ctx2 builds a fresh one-shot panic injection context (the injector in
// TestInjectedPanicContained has already fired).
func ctx2(t *testing.T) context.Context {
	t.Helper()
	sched, err := chaos.ParseSchedule("seed=1,after=20,sites=anneal.move.panic")
	if err != nil {
		t.Fatal(err)
	}
	return chaos.NewContext(context.Background(), chaos.New(sched, nil))
}
