// Metric names recorded by the comparison optimizers. Both optimizers
// pick their telemetry up from the run's context (obs.FromContext); an
// unobserved run records nothing at zero cost. The instrumentation never
// touches the seeded random stream, so an observed run stays
// bit-identical to an unobserved one.

package anneal

// Metric names of the simulated-annealing partitioner.
const (
	MetricMoves            = "anneal.moves"
	MetricAccepted         = "anneal.accepted"
	MetricEpochs           = "anneal.epochs"
	MetricTemperatureGauge = "anneal.temperature"
	MetricBestCostGauge    = "anneal.best_cost"
)

// Metric names of the greedy hill climber.
const (
	MetricHillClimbMoves         = "hillclimb.moves"
	MetricHillClimbAccepted      = "hillclimb.accepted"
	MetricHillClimbBestCostGauge = "hillclimb.best_cost"
)
