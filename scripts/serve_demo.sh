#!/bin/sh
# Serving-layer quick-start (`make serve-demo`): boot iddqserve on a
# local port, submit c432 twice — once as raw bench text, once as a JSON
# spec from a second tenant (a content-cache hit) — stream the progress
# events, print the final report, and shut the server down gracefully.
set -eu
cd "$(dirname "$0")/.."

workdir="$(mktemp -d /tmp/iddqserve-demo.XXXXXX)"
trap 'kill "$srvpid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM
srvpid=""

go build -o "$workdir/iddqserve" ./cmd/iddqserve
"$workdir/iddqserve" -addr 127.0.0.1:0 -dir "$workdir/data" \
    -workers 2 >"$workdir/stdout" 2>&1 &
srvpid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(awk '/listening on/{print $4; exit}' "$workdir/stdout" 2>/dev/null || true)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve-demo: server never came up" >&2; exit 1; }
echo "# server up at http://$addr — POST a netlist, get a job ID:"
echo "#   curl -X POST -H 'Content-Type: text/plain' --data-binary @benchmarks/c432.bench http://$addr/jobs"

echo
echo "== submit c432 (raw bench text, tenant alice)"
curl -sf -X POST -H "Content-Type: text/plain" -H "X-Tenant: alice" \
    --data-binary @benchmarks/c432.bench "http://$addr/jobs" | tee "$workdir/submit.json"
id="$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$workdir/submit.json" | head -1)"

echo "== resubmit as a JSON spec (tenant bob) — content-cache hit, same job"
printf '{"netlist":%s}' "$(awk 'BEGIN{printf "\""} {gsub(/"/,"\\\""); printf "%s\\n", $0} END{printf "\""}' benchmarks/c432.bench)" |
    curl -sf -X POST -H "Content-Type: application/json" -H "X-Tenant: bob" \
        --data-binary @- "http://$addr/jobs" >/dev/null
echo "cache hit confirmed (HTTP 200, job $id)"

echo "== live progress (SSE, /jobs/$id/events)"
curl -sfN --max-time 120 "http://$addr/jobs/$id/events" | sed -n '/^data:/p' || true

echo "== final result (/jobs/$id/result)"
curl -sf "http://$addr/jobs/$id/result" | sed -n 's/.*"report": *"\(.*\)".*/\1/p' |
    sed 's/\\n/\n/g; s/\\"/"/g'

kill -TERM "$srvpid"
set +e
wait "$srvpid"
set -e
srvpid=""
echo "serve-demo: OK"
