#!/bin/sh
# Chaos verification: run the deterministic fault-injection soak (the
# schedule matrix in internal/chaos/soak_test.go plus every chaos-tagged
# package test), then drive the CLI end-to-end with a persistent fault
# schedule and assert the run degrades loudly instead of crashing: the
# exit status is 0, the report says DEGRADED, and the run snapshot
# records degraded=true with the cause.
#
# CHAOS_OUT overrides where the chaos-armed run writes its snapshot
# (CI uploads it as a workflow artifact).
set -eu
cd "$(dirname "$0")/.."

CHAOS_OUT="${CHAOS_OUT:-/tmp/iddqsyn-chaos-run.json}"

echo "== chaos soak (go test -run TestChaosSoak ./internal/chaos/)"
go test -run TestChaosSoak ./internal/chaos/

echo "== fault-injection package tests"
go test ./internal/chaos/ ./internal/fsx/ ./internal/core/ ./internal/evolution/

echo "== chaos-armed CLI run (snapshot -> $CHAOS_OUT)"
go run ./cmd/iddqpart -gens 5 \
    -chaos "seed=1,rate=1,sites=evolution.worker.panic" \
    -metrics "$CHAOS_OUT" -log-format json -log-level error \
    benchmarks/c432.bench >/dev/null
grep -q '"degraded": *true' "$CHAOS_OUT" || {
    echo "chaos: run snapshot does not record the degradation: $CHAOS_OUT" >&2
    exit 1
}
echo "chaos: OK"
