#!/bin/sh
# Repository verification: vet, build everything, then run the full test
# suite in short mode with the race detector. This is the tier-1 check —
# run it (or `make check`) before every commit.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== iddqlint ./..."
go run ./cmd/iddqlint ./...
echo "== go test -race -short ./..."
go test -race -short ./...
echo "check: OK"
