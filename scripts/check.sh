#!/bin/sh
# Repository verification: vet, build everything, then run the full test
# suite in short mode with the race detector, and finish with a short
# instrumented optimizer run that exercises the observability path
# end-to-end (structured JSON logs + a -metrics run snapshot). This is
# the tier-1 check — run it (or `make check`) before every commit.
#
# METRICS_OUT overrides where the instrumented run writes its snapshot
# (CI uploads it as a workflow artifact).
set -eu
cd "$(dirname "$0")/.."

METRICS_OUT="${METRICS_OUT:-/tmp/iddqsyn-check-metrics.json}"

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== iddqlint -baseline lint.baseline ./..."
go run ./cmd/iddqlint -baseline lint.baseline ./...
echo "== go test -race -short ./..."
go test -race -short ./...
echo "== chaos soak (go test -run TestChaosSoak ./internal/chaos/)"
go test -run TestChaosSoak ./internal/chaos/
echo "== instrumented run (metrics -> $METRICS_OUT)"
go run ./cmd/iddqpart -gens 3 -metrics "$METRICS_OUT" \
    -log-format json -log-level info benchmarks/c432.bench >/dev/null
grep -q '"format": *"iddqsyn-run-snapshot"' "$METRICS_OUT" || {
    echo "check: metrics snapshot missing or malformed: $METRICS_OUT" >&2
    exit 1
}
echo "check: OK"
