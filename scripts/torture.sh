#!/bin/sh
# Crash-torture quick-start (`make torture`): run cmd/iddqtorture — a
# real iddqserve process under rotating chaos filesystem schedules
# (fs.enospc, fs.write.short, torn renames, failing fsyncs), SIGKILLed
# at seeded random points and restarted in a loop, with the durability
# invariants (no acked job lost, bit-identical results across resume
# and re-run, on-disk state within the disk budget) checked after every
# cycle. The run is fully seeded: a failure replays with the same flags.
#
# TORTURE_CYCLES / TORTURE_SEED override the defaults (25 cycles,
# seed 9 — the short CI mode; the full acceptance run uses 200+).
# TORTURE_OUT / TORTURE_METRICZ override the report and /metricz paths.
set -eu
cd "$(dirname "$0")/.."

TORTURE_CYCLES="${TORTURE_CYCLES:-25}"
TORTURE_SEED="${TORTURE_SEED:-9}"
TORTURE_OUT="${TORTURE_OUT:-TORTURE.json}"
TORTURE_METRICZ="${TORTURE_METRICZ:-TORTURE_metricz.json}"

echo "== iddqtorture: $TORTURE_CYCLES kill cycles, seed $TORTURE_SEED"
go run ./cmd/iddqtorture \
    -cycles "$TORTURE_CYCLES" -seed "$TORTURE_SEED" \
    -report "$TORTURE_OUT" -metricz-out "$TORTURE_METRICZ"
echo "torture: report -> $TORTURE_OUT, final metricz -> $TORTURE_METRICZ"
