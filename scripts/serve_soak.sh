#!/bin/sh
# Serving-layer soak: first the process-level kill-and-restart test
# (SIGKILL mid-job under a chaos schedule, restart, journal replay,
# bit-identical result — cmd/iddqserve/soak_test.go), then a smoke boot
# of a race-enabled binary under concurrent client load: N parallel
# text/plain submissions, every job polled to completion, and the
# /metricz snapshot saved to $SOAK_OUT (CI uploads it as an artifact).
#
# SOAK_OUT overrides the snapshot path; SOAK_CLIENTS the client count.
set -eu
cd "$(dirname "$0")/.."

SOAK_OUT="${SOAK_OUT:-/tmp/iddqserve-soak-metricz.json}"
SOAK_CLIENTS="${SOAK_CLIENTS:-6}"
workdir="$(mktemp -d /tmp/iddqserve-soak.XXXXXX)"
trap 'kill "$srvpid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM
srvpid=""

echo "== kill/restart soak (go test -race ./cmd/iddqserve/)"
go test -race -run 'TestSoakKillRestartBitIdentical' ./cmd/iddqserve/

echo "== smoke boot: race-enabled server + $SOAK_CLIENTS concurrent clients"
go build -race -o "$workdir/iddqserve" ./cmd/iddqserve
"$workdir/iddqserve" -addr 127.0.0.1:0 -dir "$workdir/data" -workers 2 \
    -log-level error >"$workdir/stdout" 2>"$workdir/stderr" &
srvpid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(awk '/listening on/{print $4; exit}' "$workdir/stdout" 2>/dev/null || true)"
    [ -n "$addr" ] && break
    kill -0 "$srvpid" 2>/dev/null || {
        echo "serve_soak: server died at startup" >&2
        cat "$workdir/stderr" >&2
        exit 1
    }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve_soak: no listening line" >&2; exit 1; }
echo "serve_soak: server up at $addr (pid $srvpid)"

# Concurrent smoke load: distinct tenants submitting the same netlist
# exercise admission, the content cache, and fair queueing at once.
clients=""
i=1
while [ "$i" -le "$SOAK_CLIENTS" ]; do
    curl -sf -X POST -H "Content-Type: text/plain" -H "X-Tenant: tenant-$i" \
        --data-binary @benchmarks/c432.bench \
        "http://$addr/jobs" >"$workdir/submit-$i.json" &
    clients="$clients $!"
    i=$((i + 1))
done
for p in $clients; do
    wait "$p" || { echo "serve_soak: a submission failed" >&2; exit 1; }
done

id="$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$workdir/submit-1.json" | head -1)"
[ -n "$id" ] || { echo "serve_soak: no job id in submit response" >&2; exit 1; }

for _ in $(seq 1 600); do
    phase="$(curl -sf "http://$addr/jobs/$id" | sed -n 's/.*"phase": *"\([^"]*\)".*/\1/p')"
    [ "$phase" = "done" ] && break
    [ "$phase" = "failed" ] && { echo "serve_soak: job failed" >&2; exit 1; }
    sleep 0.2
done
[ "$phase" = "done" ] || { echo "serve_soak: job never finished" >&2; exit 1; }

curl -sf "http://$addr/jobs/$id/result" | grep -q '"feasible": *true' || {
    echo "serve_soak: finished job is not feasible" >&2
    exit 1
}
curl -sf "http://$addr/metricz" >"$SOAK_OUT"
grep -q '"serve.jobs.finished"' "$SOAK_OUT" || {
    echo "serve_soak: /metricz snapshot missing serve counters: $SOAK_OUT" >&2
    exit 1
}

kill -TERM "$srvpid"
set +e
wait "$srvpid"
code=$?
set -e
srvpid=""
if [ "$code" -ne 4 ]; then
    echo "serve_soak: SIGTERM exit code $code, want 4 (interrupted)" >&2
    cat "$workdir/stderr" >&2
    exit 1
fi
echo "serve_soak: OK (metricz snapshot -> $SOAK_OUT)"
