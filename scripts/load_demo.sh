#!/bin/sh
# Load-harness quick-start (`make load-demo`): boot an in-process
# iddqserve (tracing armed) and step the offered arrival rate with
# iddqload -sweep until the p99 SLO breaks, then show where the latency
# went: the LOAD_<n>.json report (quantiles, achieved vs offered rate,
# 429 counts, queue-depth timeline, slowest retained traces with span
# decomposition and coverage) and a Chrome trace_event export to open
# at chrome://tracing or https://ui.perfetto.dev.
#
# LOAD_PR sets <n> (default 9); LOAD_OUT / TRACE_OUT override paths.
set -eu
cd "$(dirname "$0")/.."

LOAD_PR="${LOAD_PR:-9}"
LOAD_OUT="${LOAD_OUT:-LOAD_${LOAD_PR}.json}"
TRACE_OUT="${TRACE_OUT:-load-demo-trace.json}"

echo "== iddqload -sweep (in-process iddqserve, p99 SLO 2s)"
go run ./cmd/iddqload -inprocess -sweep \
    -rate 4 -rate-factor 2 -rate-max 128 -duration 4s \
    -gens 6 -tenants 3 -seed 1 -slo-p99 2s \
    -pr "$LOAD_PR" -out "$LOAD_OUT" -tracez-out "$TRACE_OUT"

echo
echo "== report: $LOAD_OUT"
if command -v jq >/dev/null 2>&1; then
    jq '{max_sustainable_rate, steps: [.steps[] | {offered_rate, achieved_rate, p99: .latency_seconds.p99, rejected_429, slo_met}], slowest: [.slowest_traces[] | {duration_ms, coverage_pct}]}' "$LOAD_OUT"
else
    grep -E '"(offered_rate|achieved_rate|p99|rejected_429|slo_met|max_sustainable_rate|coverage_pct)"' "$LOAD_OUT" | head -40
fi
echo
echo "load-demo: open $TRACE_OUT at chrome://tracing (or ui.perfetto.dev)"
echo "load-demo: a live server exposes the same view at /tracez"
