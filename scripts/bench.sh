#!/bin/sh
# Perf trajectory (`make bench-json`): run the canonical benchmarks —
# BenchmarkEvolve (one full c432 evolution per iteration),
# BenchmarkServeSubmit/BenchmarkServeSubmitCached (the serving layer's
# durable admission path and its cache hit), BenchmarkJournalAppend
# (one fsynced record on the segmented journal's O(1) append path) and
# BenchmarkLintRepo (a full load + type-check + analyzer-suite pass,
# the cost every CI run and pre-commit hook pays) —
# and render the results as BENCH_<n>.json so every PR leaves a
# comparable perf point on disk (ROADMAP item: the BENCH_*.json
# trajectory).
#
# The serving layer's client-observed latency rides along: a short
# in-process iddqload run contributes a "serve_latency" block
# (p50/p90/p99 end-to-end seconds at a fixed offered rate), so the
# trajectory tracks what a client feels, not only what the optimizer
# costs per op.
#
# BENCH_PR sets <n> (default 10); BENCH_OUT overrides the output path.
set -eu
cd "$(dirname "$0")/.."

BENCH_PR="${BENCH_PR:-10}"
BENCH_OUT="${BENCH_OUT:-BENCH_${BENCH_PR}.json}"
raw="$(mktemp /tmp/iddqsyn-bench.XXXXXX)"
sum="$(mktemp /tmp/iddqsyn-bench-lat.XXXXXX)"
trap 'rm -f "$raw" "$sum"' EXIT INT TERM

echo "== go test -bench (serving layer + optimizer) -> $BENCH_OUT"
go test -run '^$' -bench '^BenchmarkServeSubmit$|^BenchmarkServeSubmitCached$|^BenchmarkJournalAppend$' \
    -benchmem -benchtime 50x ./internal/serve/ | tee "$raw"
go test -run '^$' -bench '^BenchmarkEvolve$' -benchmem -benchtime 3x . | tee -a "$raw"
go test -run '^$' -bench '^BenchmarkLintRepo$' -benchmem -benchtime 3x ./internal/lint/ | tee -a "$raw"

echo "== iddqload smoke (serve e2e latency percentiles)"
go run ./cmd/iddqload -inprocess -rate 10 -duration 3s -gens 6 -seed 1 \
    -pr "$BENCH_PR" -out /tmp/iddqsyn-bench-load.json -summary "$sum"

awk -v pr="$BENCH_PR" -v goversion="$(go env GOVERSION)" -v summaryfile="$sum" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    row = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "") row = row sprintf(", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs)
    row = row "}"
    rows[n++] = row
}
END {
    if (n == 0) { print "bench: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf " \"format\": \"iddqsyn-bench\",\n"
    printf " \"version\": 1,\n"
    printf " \"pr\": %s,\n", pr
    printf " \"go\": \"%s\",\n", goversion
    printf " \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
    printf " ],\n"
    printf " \"serve_latency\": "
    first = 1
    while ((getline line < summaryfile) > 0) {
        if (first) { printf "%s\n", line; first = 0 } else printf " %s\n", line
    }
    if (first) { print "bench: latency summary missing" > "/dev/stderr"; exit 1 }
    printf "}\n"
}' "$raw" >"$BENCH_OUT"

echo "bench: wrote $BENCH_OUT"
