GO ?= go

.PHONY: check build test vet lint lint-baseline lint-escape lint-timing race race-soak chaos fuzz-isc fuzz-ckpt fuzz-jobspec fuzz-journal fuzz-directives bench bench-json obs-demo serve-demo serve-soak load-demo torture clean

# Tier-1 verification: vet + build + lint + race-enabled short tests.
check:
	sh scripts/check.sh

# Types-aware project-specific static analysis: determinism taint,
# error-wrap and mutex-guard discipline, panic policy, context
# cancellation, Close/Sync errors, atomic rename (see cmd/iddqlint).
# Findings already recorded in lint.baseline are suppressed.
lint:
	$(GO) run ./cmd/iddqlint -baseline lint.baseline ./...

# Regenerate the committed lint baseline. Only for deliberately
# accepting existing findings — the goal state is an empty baseline.
lint-baseline:
	$(GO) run ./cmd/iddqlint -baseline-update ./...

# Cross-check the hotalloc analyzer against the compiler's escape
# analysis (-gcflags=-m=1): every compiler heap diagnostic inside a hot
# function body must be an allocation site the analyzer saw. Fails on
# analyzer false negatives.
lint-escape:
	$(GO) run ./cmd/iddqlint -escapecheck ./...

# Per-analyzer wall-clock breakdown of a full lint run, to keep the 30s
# lint CI budget honest when adding analyzers.
lint-timing:
	$(GO) run ./cmd/iddqlint -timing -baseline lint.baseline ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The static-vs-dynamic race cross-check (iddqlint -racecheck): the
# seeded intentional-race corpus must fail under -race with every seed
# attributed to its sharedstate finding, and the chaos/serve/torture-lite
# soaks must produce zero unexplained GORACE reports. Raw detector
# output lands in racecheck-logs/ (RACECHECK_LOG overrides; CI uploads).
RACECHECK_LOG ?= racecheck-logs
race-soak:
	$(GO) run ./cmd/iddqlint -racecheck -racecheck-log $(RACECHECK_LOG) ./...

# A short instrumented partitioning: live introspection on :6060
# (/runz, /metricz, expvar, pprof), JSON logs, and a run snapshot in
# obs-demo.json when it finishes.
obs-demo:
	$(GO) run ./cmd/iddqpart -gens 50 -debug-addr :6060 -metrics obs-demo.json \
	    -log-format json -log-level info benchmarks/c432.bench

# Fault-injection soak: the chaos schedule matrix over full syntheses
# (recovery must be bit-identical, degradation must be marked, failures
# must be named — see internal/chaos), plus a chaos-armed CLI run whose
# snapshot lands in chaos-run.json (CHAOS_OUT overrides; CI uploads it).
chaos:
	sh scripts/chaos.sh

# Fuzz the ISCAS85 parser (bounded; extend -fuzztime for deeper runs).
fuzz-isc:
	$(GO) test ./internal/isc/ -fuzz FuzzRead -fuzztime 30s

# Fuzz the optimizer checkpoint loader (crash-freedom + round-trip).
fuzz-ckpt:
	$(GO) test ./internal/evolution/ -fuzz FuzzCheckpointRoundTrip -fuzztime 30s

# Fuzz the serving layer's job-spec parser (named errors, never panics).
fuzz-jobspec:
	$(GO) test ./internal/serve/ -fuzz FuzzJobSpec -fuzztime 30s

# Fuzz the segmented-journal replay path (arbitrary bytes on disk must
# open, salvage what validates, and keep accepting appends — no panics,
# no refusal short of base corruption).
fuzz-journal:
	$(GO) test ./internal/serve/ -fuzz FuzzJournalReplay -fuzztime 30s

# Fuzz the lint directive parsers (//lint:hotpath, //lint:ignore —
# malformed input must produce findings, never panics).
fuzz-directives:
	$(GO) test ./internal/lint/ -fuzz FuzzDirectives -fuzztime 30s

# Serving-layer quick-start: boot iddqserve, submit c432 as raw bench
# text and as a JSON spec (content-cache hit), stream SSE progress,
# print the report, shut down gracefully.
serve-demo:
	sh scripts/serve_demo.sh

# Serving-layer soak: the process-level SIGKILL/restart bit-identity
# test, then a race-enabled smoke boot under concurrent client load
# with the /metricz snapshot saved (SOAK_OUT overrides; CI uploads it).
serve-soak:
	sh scripts/serve_soak.sh

# Saturation quick-start: iddqload -sweep against an in-process
# iddqserve — steps the offered rate until the p99 SLO breaks, writes
# LOAD_<n>.json (quantiles, queue-depth timeline, slowest traces) and a
# Chrome trace export (LOAD_PR/LOAD_OUT/TRACE_OUT override).
load-demo:
	sh scripts/load_demo.sh

# Crash-torture quick-start: seeded random-kill cycles of a real
# iddqserve under chaos fs schedules, invariants checked every cycle
# (TORTURE_CYCLES/TORTURE_SEED/TORTURE_OUT override; CI uploads the
# report and final /metricz as artifacts).
torture:
	sh scripts/torture.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# The committed perf trajectory: BenchmarkEvolve + BenchmarkServeSubmit
# rendered to BENCH_<n>.json (BENCH_PR / BENCH_OUT override).
bench-json:
	sh scripts/bench.sh

clean:
	$(GO) clean ./...
