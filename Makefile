GO ?= go

.PHONY: check build test vet race fuzz-isc bench clean

# Tier-1 verification: vet + build + race-enabled short tests.
check:
	sh scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Fuzz the ISCAS85 parser (bounded; extend -fuzztime for deeper runs).
fuzz-isc:
	$(GO) test ./internal/isc/ -fuzz FuzzRead -fuzztime 30s

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
