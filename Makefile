GO ?= go

.PHONY: check build test vet lint race fuzz-isc bench clean

# Tier-1 verification: vet + build + lint + race-enabled short tests.
check:
	sh scripts/check.sh

# Project-specific static analysis: determinism, panic policy, context
# cancellation and Close/Sync error discipline (see cmd/iddqlint).
lint:
	$(GO) run ./cmd/iddqlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Fuzz the ISCAS85 parser (bounded; extend -fuzztime for deeper runs).
fuzz-isc:
	$(GO) test ./internal/isc/ -fuzz FuzzRead -fuzztime 30s

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
