GO ?= go

.PHONY: check build test vet lint race fuzz-isc bench obs-demo clean

# Tier-1 verification: vet + build + lint + race-enabled short tests.
check:
	sh scripts/check.sh

# Project-specific static analysis: determinism, panic policy, context
# cancellation and Close/Sync error discipline (see cmd/iddqlint).
lint:
	$(GO) run ./cmd/iddqlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A short instrumented partitioning: live introspection on :6060
# (/runz, /metricz, expvar, pprof), JSON logs, and a run snapshot in
# obs-demo.json when it finishes.
obs-demo:
	$(GO) run ./cmd/iddqpart -gens 50 -debug-addr :6060 -metrics obs-demo.json \
	    -log-format json -log-level info benchmarks/c432.bench

# Fuzz the ISCAS85 parser (bounded; extend -fuzztime for deeper runs).
fuzz-isc:
	$(GO) test ./internal/isc/ -fuzz FuzzRead -fuzztime 30s

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
