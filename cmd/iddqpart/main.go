// Command iddqpart synthesizes an IDDQ-testable design from a gate-level
// netlist: it partitions the circuit into BIC-sensor modules with the
// evolution-based algorithm (or the greedy standard baseline), sizes one
// Built-In Current sensor per module, and prints the design report.
//
// Usage:
//
//	iddqpart [-method evolution|standard] [-lib cells.lib] [-size N]
//	         [-modules K] [-d 10] [-rail 0.2] [-gens 250] [-seed 1]
//	         [-v] circuit.bench
//
// With no file argument, the netlist is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/core"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/partition"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iddqpart:", err)
		os.Exit(1)
	}
}

func run() error {
	method := flag.String("method", "evolution", "partitioning method: evolution or standard")
	libPath := flag.String("lib", "", "cell library file (default: built-in 1µm CMOS library)")
	size := flag.Int("size", 0, "module size (0 = estimate from averaged parameters)")
	modules := flag.Int("modules", 0, "standard method: target module count (overrides -size)")
	disc := flag.Float64("d", 10, "required discriminability d")
	rail := flag.Float64("rail", 0.2, "maximum virtual-rail perturbation r*, volts")
	gens := flag.Int("gens", 0, "override evolution generation budget")
	seed := flag.Int64("seed", 1, "evolution seed")
	verbose := flag.Bool("v", false, "trace evolution progress")
	flag.Parse()

	c, err := readCircuit(flag.Arg(0))
	if err != nil {
		return err
	}

	opt := core.Options{ModuleSize: *size, Modules: *modules}
	switch *method {
	case "evolution":
		opt.Method = core.MethodEvolution
	case "standard":
		opt.Method = core.MethodStandard
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if *libPath != "" {
		f, err := os.Open(*libPath)
		if err != nil {
			return err
		}
		lib, err := celllib.ReadLibrary(f)
		f.Close()
		if err != nil {
			return err
		}
		opt.Library = lib
	}
	prm := estimate.DefaultParams()
	prm.RailLimit = *rail
	opt.Params = &prm
	cons := partition.Constraints{MinDiscriminability: *disc}
	opt.Constraints = &cons
	eprm := evolution.DefaultParams()
	eprm.Seed = *seed
	if *gens > 0 {
		eprm.MaxGenerations = *gens
	}
	opt.Evolution = &eprm
	if *verbose {
		opt.Trace = func(gen int, best *partition.Partition, bestCost float64) {
			if gen%10 == 0 {
				fmt.Fprintf(os.Stderr, "generation %4d: K=%d C=%.6g\n",
					gen, best.NumModules(), bestCost)
			}
		}
	}

	res, err := core.Synthesize(c, opt)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	return nil
}

func readCircuit(path string) (*circuit.Circuit, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		name = path
	}
	return bench.Read(r, name)
}
