// Command iddqpart synthesizes an IDDQ-testable design from a gate-level
// netlist: it partitions the circuit into BIC-sensor modules with the
// evolution-based algorithm (or the greedy standard baseline), sizes one
// Built-In Current sensor per module, and prints the design report.
//
// Usage:
//
//	iddqpart [-method evolution|standard] [-lib cells.lib] [-size N]
//	         [-modules K] [-d 10] [-rail 0.2] [-gens 250] [-seed 1]
//	         [-workers N] [-timeout 30m] [-checkpoint run.ckpt]
//	         [-checkpoint-every 10] [-resume run.ckpt] [-verify] [-v]
//	         [-debug-addr :6060] [-metrics run.json]
//	         [-log-format text|json] [-log-level warn]
//	         [-chaos seed=1,rate=0.1,sites=fs.*] [-degrade=false]
//	         circuit.bench
//
// -chaos arms the deterministic fault-injection harness (package chaos):
// the one-line schedule seeds per-site fault streams over checkpoint and
// snapshot I/O, the evolution worker pool and the estimator boundary, so
// a failure scenario replays exactly from its spec line. -degrade
// (default true) makes the synthesis fall back to greedy standard
// partitioning when every optimizer attempt fails; the fallback is
// loudly marked DEGRADED on stderr, in the report and in the -metrics
// snapshot.
//
// The run is fully observable: -debug-addr serves live introspection
// (expvar, pprof, and a /runz JSON view of the optimizer's current
// generation and best cost), -metrics persists the run's complete
// telemetry — per-generation best-cost history, estimator-evaluation
// counts and latency histograms, mutation/Monte-Carlo acceptance — as a
// JSON snapshot, and -log-format/-log-level control the structured run
// log on stderr. -v is shorthand for -log-level debug and streams
// per-generation progress.
//
// -verify runs the static partition auditor (package partcheck) on the
// final design: exact gate cover, netlist consistency, the module
// estimates, and the discriminability requirement -d. Any violation is
// reported with the violated constraint named and the exit status is
// nonzero. Checkpoints are always audited structurally on load, so a
// hand-edited -resume file is rejected the same way.
//
// With no file argument, the netlist is read from standard input.
//
// Long evolution runs are fully run-controlled: a SIGINT or SIGTERM (or
// an expired -timeout) stops the optimizer at the next generation
// boundary, persists a checkpoint if -checkpoint is set, and prints the
// best-so-far design — a second signal hard-exits. `iddqpart -resume
// run.ckpt` continues a checkpointed run and, by the determinism of the
// seeded evolution strategy, finishes with exactly the result the
// uninterrupted run would have produced.
//
// Exit status (the runctl contract, shared with iddqstudy and
// iddqserve): 0 converged, 1 generic failure, 2 usage error, 3 -timeout
// expired (best-so-far design reported), 4 stopped by the first
// SIGINT/SIGTERM (best-so-far design reported), 5 named optimizer
// failure, 130 forced exit on the second signal.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/chaos"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/core"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/obscli"
	"iddqsyn/internal/partcheck"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/runctl"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iddqpart:", err)
	}
	os.Exit(code)
}

func run() (code int, retErr error) {
	method := flag.String("method", "evolution", "partitioning method: evolution or standard")
	libPath := flag.String("lib", "", "cell library file (default: built-in 1µm CMOS library)")
	size := flag.Int("size", 0, "module size (0 = estimate from averaged parameters)")
	modules := flag.Int("modules", 0, "standard method: target module count (overrides -size)")
	disc := flag.Float64("d", 10, "required discriminability d")
	rail := flag.Float64("rail", 0.2, "maximum virtual-rail perturbation r*, volts")
	gens := flag.Int("gens", 0, "override evolution generation budget")
	seed := flag.Int64("seed", 1, "evolution seed")
	workers := flag.Int("workers", 0, "parallel cost-evaluation workers (0/1 = sequential)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget; on expiry the best-so-far design is reported (0 = none)")
	ckptPath := flag.String("checkpoint", "", "write crash-safe optimizer checkpoints to this file")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in generations (0 = default)")
	resume := flag.String("resume", "", "resume an evolution run from this checkpoint file")
	verify := flag.Bool("verify", false, "statically verify the final partition (exact cover, netlist consistency, discriminability) and fail on any violation")
	chaosSpec := flag.String("chaos", "", "inject deterministic faults per this schedule, e.g. seed=1,rate=0.1,sites=fs.*|estimate.nan (robustness testing)")
	degrade := flag.Bool("degrade", true, "fall back to standard partitioning when every optimizer attempt fails (the result is marked DEGRADED)")
	verbose := flag.Bool("v", false, "trace evolution progress (shorthand for -log-level debug)")
	var oc obscli.Config
	oc.Register(flag.CommandLine)
	flag.Parse()
	oc.Verbose = *verbose

	c, err := readCircuit(flag.Arg(0))
	if err != nil {
		return runctl.ExitFailure, err
	}

	opt := core.Options{ModuleSize: *size, Modules: *modules}
	switch *method {
	case "evolution":
		opt.Method = core.MethodEvolution
	case "standard":
		opt.Method = core.MethodStandard
	default:
		return runctl.ExitUsage, fmt.Errorf("unknown method %q", *method)
	}
	if *libPath != "" {
		f, err := os.Open(*libPath)
		if err != nil {
			return runctl.ExitFailure, err
		}
		lib, err := celllib.ReadLibrary(f)
		_ = f.Close() // read-only; a close error cannot corrupt anything
		if err != nil {
			return runctl.ExitFailure, err
		}
		opt.Library = lib
	}
	prm := estimate.DefaultParams()
	prm.RailLimit = *rail
	opt.Params = &prm
	cons := partition.Constraints{MinDiscriminability: *disc}
	opt.Constraints = &cons
	eprm := evolution.DefaultParams()
	eprm.Seed = *seed
	eprm.Workers = *workers
	if *gens > 0 {
		eprm.MaxGenerations = *gens
	}
	opt.Evolution = &eprm

	// Run control: checkpointing, resume, wall-clock budget, signals.
	ckpt := *ckptPath
	if *resume != "" {
		ck, err := evolution.LoadCheckpoint(*resume)
		if err != nil {
			return runctl.ExitFailure, err
		}
		opt.Resume = ck
		if ckpt == "" {
			ckpt = *resume // keep checkpointing the resumed run in place
		}
	}
	if ckpt != "" {
		opt.Control = &evolution.Control{CheckpointPath: ckpt, CheckpointEvery: *ckptEvery}
	}
	if opt.Method != core.MethodEvolution && (ckpt != "" || opt.Resume != nil) {
		return runctl.ExitUsage, fmt.Errorf("-checkpoint/-resume apply to -method evolution only")
	}

	// Observability: structured run log, live debug server, -metrics
	// snapshot. Finish always runs — the telemetry of a failed or
	// interrupted run is exactly the evidence worth keeping.
	orun, err := oc.Start(os.Stderr)
	if err != nil {
		return runctl.ExitFailure, err
	}
	defer func() {
		if ferr := orun.Finish(c.Name); ferr != nil && retErr == nil {
			retErr = ferr
			code = runctl.ExitFailure
		}
	}()
	opt.Obs = orun.Obs
	opt.Degrade = *degrade && opt.Method == core.MethodEvolution

	// Fault injection: one seeded schedule drives every chaos site — the
	// checkpoint/snapshot filesystem, the evolution worker pool and the
	// estimator boundary all observe the same replayable injector.
	if *chaosSpec != "" {
		sched, err := chaos.ParseSchedule(*chaosSpec)
		if err != nil {
			return runctl.ExitUsage, err
		}
		inj := chaos.New(sched, orun.Obs)
		opt.Chaos = inj
		if opt.Control == nil {
			opt.Control = &evolution.Control{}
		}
		opt.Control.FS = chaos.NewFS(nil, inj)
		fmt.Fprintf(os.Stderr, "iddqpart: chaos schedule active: %s (sites: %v)\n",
			sched, sched.MatchedSites())
	}

	ctx, cancelTimeout := runctl.WithTimeoutObs(context.Background(), *timeout, orun.Obs)
	defer cancelTimeout()
	ctx, stop := runctl.WithSignalsObs(ctx, os.Stderr, orun.Obs)
	defer stop()

	res, err := core.SynthesizeContext(ctx, c, opt)
	if err != nil {
		// The documented exit-code contract: a failure provoked by the
		// -timeout deadline or a delivered signal classifies as that
		// controlled stop; anything else is a named optimizer failure.
		return runctl.ExitCode(err, context.Cause(ctx)), err
	}
	stop()
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "iddqpart: DEGRADED: every optimizer attempt failed; reporting the standard-partitioning fallback (cause: %v)\n",
			res.DegradedErr)
	}
	if ev := res.Evolution; ev != nil && ev.Interrupted {
		fmt.Fprintf(os.Stderr, "iddqpart: %v\n", ev.Err)
		if ckpt != "" {
			fmt.Fprintf(os.Stderr, "iddqpart: checkpoint saved to %s — resume with: iddqpart -resume %s %s\n",
				ckpt, ckpt, flag.Arg(0))
		}
		fmt.Fprintln(os.Stderr, "iddqpart: reporting the best-so-far design")
	}
	fmt.Print(res.Report())
	if *verify {
		r := partcheck.VerifyPartition(res.Partition, partcheck.Feasibility(*disc))
		fmt.Fprintln(os.Stderr, r)
		if err := r.Err(); err != nil {
			return runctl.ExitFailure, err
		}
	}
	if ev := res.Evolution; ev != nil && ev.Interrupted {
		// Best-so-far result reported, but the run was cut short: exit
		// with the documented timeout/interrupt status so callers can
		// tell a stopped run from a converged one.
		return runctl.ExitCode(nil, context.Cause(ctx)), nil
	}
	return runctl.ExitOK, nil
}

func readCircuit(path string) (*circuit.Circuit, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		name = path
	}
	return bench.Read(r, name)
}
