package main

// Process-level soak: SIGKILL the server mid-job under an armed chaos
// schedule, restart it over the same data directory, and require the
// journal replay + checkpoint resume to finish the job bit-identically
// to a run that was never interrupted. This is the end-to-end proof of
// the durability contract — the in-process variant lives in
// internal/serve; this one goes through a real binary, real signals,
// and a real filesystem.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iddqsyn/internal/runctl"
)

// soakChaos delays evolution workers without touching their RNG
// streams, so it stretches the kill window while preserving the
// bit-identity the test asserts.
const soakChaos = "seed=1,rate=0.5,delay=3ms,sites=evolution.worker.delay"

var (
	buildOnce sync.Once
	serveBin  string
	buildErr  error
)

// buildServe compiles the iddqserve binary once per test run. When the
// test binary itself is race-built (the racecheck serve-soak scope), the
// child is too, so journal replay and worker-pool races in the real
// server surface as GORACE reports in its stderr.
func buildServe(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "iddqserve-bin-")
		if err != nil {
			buildErr = err
			return
		}
		serveBin = filepath.Join(dir, "iddqserve")
		args := []string{"build"}
		if raceBuilt {
			args = append(args, "-race")
		}
		args = append(args, "-o", serveBin, ".")
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return serveBin
}

// proc is one running iddqserve process plus the address it bound.
type proc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

// startServe launches the binary and waits for its "listening on" line.
func startServe(t *testing.T, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(buildServe(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, stderr: &stderr}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(time.Minute)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on ") {
				got <- strings.Fields(line)[3]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
		close(got)
	}()
	select {
	case addr, ok := <-got:
		if !ok {
			t.Fatalf("server exited before announcing its address; stderr:\n%s", stderr.String())
		}
		p.addr = addr
	case <-deadline:
		t.Fatalf("no listening line within a minute; stderr:\n%s", stderr.String())
	}
	return p
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

// getJSON decodes a GET response into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// waitHealthy polls /healthz until the admission gate opens.
func waitHealthy(t *testing.T, p *proc) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url("/healthz"))
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never became healthy; stderr:\n%s", p.addr, p.stderr.String())
}

// soakSpec is the job every soak process runs: c432 is big enough that
// the kill window (generation >= 10 of 120) is easy to hit under the
// delay schedule.
func soakSpec(t *testing.T) []byte {
	t.Helper()
	netlist, err := os.ReadFile(filepath.Join("..", "..", "benchmarks", "c432.bench"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"netlist":     string(netlist),
		"name":        "soak-c432",
		"module_size": 40,
		"generations": 120,
		"seed":        3,
		"timeout":     "5m",
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// submit posts the spec and returns the job ID.
func submit(t *testing.T, p *proc, body []byte) string {
	t.Helper()
	resp, err := http.Post(p.url("/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

type soakStatus struct {
	Phase      string `json:"phase"`
	Generation int    `json:"generation"`
	Detail     string `json:"detail"`
}

type soakResult struct {
	Cost        float64 `json:"cost"`
	Feasible    bool    `json:"feasible"`
	Modules     int     `json:"modules"`
	Generations int     `json:"generations"`
	Evaluations int     `json:"evaluations"`
	Degraded    bool    `json:"degraded"`
	TimedOut    bool    `json:"timed_out"`
	Report      string  `json:"report"`
}

// waitPhase polls the job until it reaches phase, failing on "failed".
func waitPhase(t *testing.T, p *proc, id, phase string, timeout time.Duration) soakStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st soakStatus
	for time.Now().Before(deadline) {
		getJSON(t, p.url("/jobs/"+id), &st)
		if st.Phase == phase {
			return st
		}
		if st.Phase == "failed" {
			t.Fatalf("job %s failed: %s", id, st.Detail)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never reached phase %q (last: %+v); stderr:\n%s", id, phase, st, p.stderr.String())
	return st
}

func TestSoakKillRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level soak skipped in -short mode")
	}
	spec := soakSpec(t)

	// Reference: an uninterrupted run in a fresh directory, no chaos.
	ref := startServe(t, "-dir", t.TempDir(), "-workers", "2")
	waitHealthy(t, ref)
	refID := submit(t, ref, spec)
	waitPhase(t, ref, refID, "done", 2*time.Minute)
	var want soakResult
	if code := getJSON(t, ref.url("/jobs/"+refID+"/result"), &want); code != http.StatusOK {
		t.Fatalf("reference result: status %d", code)
	}
	if want.Degraded || want.TimedOut || !want.Feasible {
		t.Fatalf("reference run unhealthy: %+v", want)
	}

	// Victim: chaos-armed, checkpointing every generation. SIGKILL it
	// once the job is demonstrably mid-flight.
	dir := t.TempDir()
	args := []string{"-dir", dir, "-workers", "2", "-checkpoint-every", "1", "-chaos", soakChaos}
	p1 := startServe(t, args...)
	waitHealthy(t, p1)
	id := submit(t, p1, spec)
	if id != refID {
		t.Fatalf("content-addressed IDs diverged: %s vs %s", id, refID)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		var st soakStatus
		getJSON(t, p1.url("/jobs/"+id), &st)
		if st.Phase == "running" && st.Generation >= 10 {
			break
		}
		if st.Phase == "done" {
			t.Fatal("job finished before the kill window; slow the chaos schedule down")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached generation 10 (last: %+v); stderr:\n%s", st, p1.stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = p1.cmd.Wait()

	// Restart over the same directory: replay must requeue the job and
	// resume it from its checkpoint.
	p2 := startServe(t, args...)
	waitHealthy(t, p2)
	waitPhase(t, p2, id, "done", 2*time.Minute)
	var got soakResult
	if code := getJSON(t, p2.url("/jobs/"+id+"/result"), &got); code != http.StatusOK {
		t.Fatalf("resumed result: status %d", code)
	}
	if got != want {
		t.Errorf("resumed run is not bit-identical to the uninterrupted run:\n got: %+v\nwant: %+v", got, want)
	}

	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	getJSON(t, p2.url("/metricz"), &snap)
	if snap.Counters["serve.jobs.resumed"] == 0 {
		t.Errorf("serve.jobs.resumed = 0 after a kill/restart; counters: %v", snap.Counters)
	}

	// Graceful stop: the first SIGTERM must exit with the shared
	// interrupted code.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err == nil {
		t.Fatal("SIGTERM exit reported success; want the interrupted exit code")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != runctl.ExitInterrupted {
		t.Fatalf("SIGTERM exit: %v (stderr:\n%s)", err, p2.stderr.String())
	}
	_ = ref.cmd.Process.Kill()
	_ = ref.cmd.Wait() // joins the stderr copier before the read below

	// Under a race-built child (the racecheck serve-soak scope), any
	// GORACE report in a server's stderr is a finding: echo it so the
	// cross-check can parse and attribute it, and fail the soak.
	for _, p := range []*proc{ref, p1, p2} {
		if s := p.stderr.String(); strings.Contains(s, "WARNING: DATA RACE") {
			t.Errorf("race detected in the iddqserve child:\n%s", s)
		}
	}
}

// TestServeUsageExit pins the usage exit code for stray arguments.
func TestServeUsageExit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the built binary")
	}
	err := exec.Command(buildServe(t), "stray").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != runctl.ExitUsage {
		t.Fatalf("stray-argument exit: %v, want code %d", err, runctl.ExitUsage)
	}
}

func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(m.Run())
}
