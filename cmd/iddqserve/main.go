// Command iddqserve runs IDDQ-testable partition synthesis as a
// crash-safe multi-tenant HTTP service. Clients POST a gate-level
// netlist (bench text, or a JSON spec with options) to /jobs and get a
// content-addressed job ID; a bounded worker pool runs each job through
// the full core synthesis flow — evolution optimizer, retry/degrade
// loop, static partition audit — under a per-job timeout, with progress
// streamed over SSE at /jobs/{id}/events and the durable result at
// /jobs/{id}/result.
//
// Usage:
//
//	iddqserve [-addr :8080] [-dir data] [-workers 2] [-queue-cap 64]
//	          [-job-timeout 5m] [-job-attempts 2] [-checkpoint-every 5]
//	          [-seed 1] [-timeout 0] [-chaos seed=1,rate=0.1,sites=...]
//	          [-retain-jobs 0] [-retain-age 0] [-disk-budget 0]
//	          [-maintenance-every 2s]
//	          [-debug-addr :6060] [-metrics run.json]
//	          [-log-format text|json] [-log-level warn]
//
// Durability is the service's contract. Every job lifecycle transition
// lands in an append-only journal (crash-safe atomic writes) and every
// optimizer checkpoints its state, so a SIGKILL'd server restarts over
// the same -dir, replays the journal, re-enqueues the unfinished jobs
// and resumes each from its checkpoint — finishing bit-identically to a
// run that was never interrupted (scripts/serve_soak.sh proves this).
//
// Backpressure is explicit: when the bounded queue is full, submissions
// get 429 with a Retry-After estimate; per-tenant round-robin dispatch
// keeps one flooding tenant from starving the rest. Identical
// submissions (same netlist structure and options, any tenant) dedupe
// onto one job via the content hash.
//
// The storage lifecycle is bounded: -retain-jobs / -retain-age evict
// the oldest terminal jobs (queued and running jobs are never evicted),
// and -disk-budget caps the data directory — above it maintenance
// evicts terminal jobs oldest-first and, if the directory still
// overflows (or the disk reports ENOSPC), sheds new submissions with
// 503 + Retry-After while in-flight jobs finish, recovering
// automatically once space returns. /healthz names the degradation.
//
// -chaos arms chaos admission: the deterministic fault schedule is
// injected into every job's failure surfaces (worker pool, estimator,
// checkpoint/journal filesystem), and the server refuses all traffic —
// /healthz 503 — until a self-test job has survived the faults end to
// end with a partcheck-valid result.
//
// The first SIGINT/SIGTERM (or an expired -timeout) stops the service
// gracefully: in-flight jobs interrupt at their next generation
// boundary and persist checkpoints, the journal stays consistent, and
// the HTTP listener drains. A second signal hard-exits.
//
// Exit status (the runctl contract, shared with iddqpart and
// iddqstudy): 0 clean exit, 1 generic failure, 2 usage error, 3 the
// -timeout serving budget expired, 4 stopped by the first
// SIGINT/SIGTERM, 5 named startup/serving failure, 130 forced exit on
// the second signal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/obscli"
	"iddqsyn/internal/runctl"
	"iddqsyn/internal/serve"
)

// drainTimeout bounds the graceful HTTP drain at shutdown before the
// listener is force-closed.
const drainTimeout = 10 * time.Second

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iddqserve:", err)
	}
	os.Exit(code)
}

func run() (code int, retErr error) {
	addr := flag.String("addr", ":8080", "listen address (e.g. :8080 or 127.0.0.1:0)")
	dir := flag.String("dir", "data", "data directory: job journal, specs, results, checkpoints")
	workers := flag.Int("workers", serve.DefaultWorkers, "job worker pool size")
	queueCap := flag.Int("queue-cap", serve.DefaultQueueCap, "admission queue bound (full queue answers 429)")
	jobTimeout := flag.Duration("job-timeout", serve.DefaultJobTimeout, "default per-job wall-clock budget (specs may set their own, bounded)")
	jobAttempts := flag.Int("job-attempts", serve.DefaultJobAttempts, "serve-level attempts per job before it is failed")
	ckptEvery := flag.Int("checkpoint-every", serve.DefaultCheckpointEvery, "per-job checkpoint cadence in generations")
	seed := flag.Int64("seed", 1, "seed for the service's retry-backoff jitter")
	retainJobs := flag.Int("retain-jobs", 0, "terminal jobs kept on disk; the oldest beyond this are evicted (0 = unbounded)")
	retainAge := flag.Duration("retain-age", 0, "terminal jobs older than this are evicted (0 = unbounded)")
	diskBudget := flag.Int64("disk-budget", 0, "data-directory size bound in bytes; above it terminal jobs are evicted and, failing that, new submissions are shed with 503 (0 = unbounded)")
	maintEvery := flag.Duration("maintenance-every", serve.DefaultMaintenanceEvery, "journal-compaction and retention/GC cadence")
	timeout := flag.Duration("timeout", 0, "serving wall-clock budget; on expiry the service shuts down gracefully (0 = none)")
	chaosSpec := flag.String("chaos", "", "inject deterministic faults per this schedule and gate admission on a self-test job surviving them")
	var oc obscli.Config
	// Tracing is on by default for the service (K = obs default): a
	// long-lived server should always be able to answer "where did the
	// slow request's milliseconds go" at /tracez. -trace-slowest 0 turns
	// it off.
	oc.TraceSlowest = obs.DefaultSlowestTraces
	oc.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		return runctl.ExitUsage, fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	orun, err := oc.Start(os.Stderr)
	if err != nil {
		return runctl.ExitFailure, err
	}
	defer func() {
		if ferr := orun.Finish("serve"); ferr != nil && retErr == nil {
			retErr = ferr
			code = runctl.ExitFailure
		}
	}()

	cfg := serve.Config{
		Dir:               *dir,
		Workers:           *workers,
		QueueCap:          *queueCap,
		JobTimeout:        *jobTimeout,
		JobAttempts:       *jobAttempts,
		CheckpointEvery:   *ckptEvery,
		Seed:              *seed,
		RetainJobs:        *retainJobs,
		RetainAge:         *retainAge,
		DiskBudget:        *diskBudget,
		MaintenanceEvery:  *maintEvery,
		SelfTestAdmission: *chaosSpec != "",
		Obs:               orun.Obs,
	}
	if *chaosSpec != "" {
		sched, err := chaos.ParseSchedule(*chaosSpec)
		if err != nil {
			return runctl.ExitUsage, err
		}
		inj := chaos.New(sched, orun.Obs)
		cfg.Chaos = inj
		cfg.FS = chaos.NewFS(fsx.OS{}, inj)
		fmt.Fprintf(os.Stderr, "iddqserve: chaos schedule active: %s (sites: %v); admission gated on self-test\n",
			sched, sched.MatchedSites())
	}
	s, err := serve.New(cfg)
	if err != nil {
		return runctl.ExitOptimizer, err
	}
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		return runctl.ExitFailure, err
	}
	hsrv := obs.HardenedServerMax(s.Handler(), serve.MaxSubmitBytes)
	httpDone := make(chan error, 1)
	go func() { httpDone <- hsrv.Serve(ln) }()
	// The one line wrappers parse: the bound address on stdout.
	fmt.Printf("iddqserve: listening on %s (data dir %s, %d workers)\n",
		ln.Addr(), *dir, cfg.Workers)

	ctx, cancelTimeout := runctl.WithTimeoutObs(context.Background(), *timeout, orun.Obs)
	defer cancelTimeout()
	ctx, stop := runctl.WithSignalsObs(ctx, os.Stderr, orun.Obs)
	defer stop()

	if cfg.SelfTestAdmission {
		// Admission runs while the listener is already up: probes see an
		// honest 503 until the self-test job survives the fault schedule.
		go func() {
			if err := s.SelfTest(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "iddqserve: ADMISSION REFUSED: %v\n", err)
				orun.Obs.Log().Error("admission self-test failed", "err", err.Error())
				return
			}
			fmt.Fprintln(os.Stderr, "iddqserve: admission self-test passed; serving")
		}()
	}

	// Serve until the context ends (signal or -timeout) or the HTTP
	// server fails outright.
	select {
	case <-ctx.Done():
	case err := <-httpDone:
		s.Close()
		return runctl.ExitOptimizer, fmt.Errorf("http server: %w", err)
	}
	stop()

	// Shutdown ordering matters: stop the job engine first (in-flight
	// optimizers interrupt at generation boundaries and persist
	// checkpoints; every event stream closes, so SSE handlers drain),
	// then gracefully drain the HTTP listener with a hard-close backstop.
	s.Close()
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hsrv.Shutdown(dctx); err != nil {
		if cerr := hsrv.Close(); cerr != nil && !errors.Is(cerr, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "iddqserve: forced listener close: %v\n", cerr)
		}
	}
	<-httpDone
	return runctl.ExitCode(nil, context.Cause(ctx)), nil
}
