//go:build !race

package main

// raceBuilt is false in normal test builds: the soak child is built
// without the detector's ~10x slowdown. See race_on_test.go.
const raceBuilt = false
