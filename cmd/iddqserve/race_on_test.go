//go:build race

package main

// raceBuilt mirrors the test binary's own -race setting into buildServe,
// so the race-soak cross-check (iddqlint -racecheck, CI race-soak job)
// exercises the child server under the detector too: a soak that
// SIGKILLs and restarts a non-instrumented binary would only ever race
// the test harness, not the server.
const raceBuilt = true
