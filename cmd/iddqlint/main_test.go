package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.21\n"
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtyFile = `package p

import "fmt"

func f(err error) error {
	return fmt.Errorf("load: %v", err)
}
`

const cleanFile = `package p

import "fmt"

func f(err error) error {
	return fmt.Errorf("load: %w", err)
}
`

func TestExitCodeClean(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": cleanFile})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s stdout: %s", code, errb.String(), out.String())
	}
}

func TestExitCodeFindings(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": dirtyFile})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "errwrapcheck") {
		t.Fatalf("stdout missing errwrapcheck finding: %s", out.String())
	}
}

func TestExitCodeTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n\nfunc f() int { return undefined }\n"})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (tooling failure); stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "undefined") {
		t.Fatalf("stderr should name the type error: %s", errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": dirtyFile})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root, "-json"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; stderr: %s", code, errb.String())
	}
	var findings []struct {
		File, Analyzer, Message string
		Line                    int
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0].Analyzer != "errwrapcheck" || findings[0].File != "p/p.go" {
		t.Fatalf("findings = %+v", findings)
	}
}

func TestSARIFOutput(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": dirtyFile})
	sarif := filepath.Join(root, "lint.sarif")
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root, "-sarif", sarif}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string
		Runs    []struct {
			Results []struct{ RuleID string }
		}
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 ||
		log.Runs[0].Results[0].RuleID != "errwrapcheck" {
		t.Fatalf("sarif = %s", data)
	}
}

func TestBaselineWorkflow(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": dirtyFile})
	var out, errb bytes.Buffer
	// Grandfather the current findings.
	if code := run([]string{"-root", root, "-baseline-update"}, &out, &errb); code != 0 {
		t.Fatalf("baseline-update exit %d; stderr: %s", code, errb.String())
	}
	bpath := filepath.Join(root, "lint.baseline")
	if _, err := os.Stat(bpath); err != nil {
		t.Fatal(err)
	}
	// Now the tree is clean modulo the baseline.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", root, "-baseline", bpath}, &out, &errb); code != 0 {
		t.Fatalf("baselined run exit %d; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "absorbed 1") {
		t.Fatalf("expected absorption note, got %s", errb.String())
	}
	// A new finding is still fresh.
	extra := filepath.Join(root, "p", "q.go")
	if err := os.WriteFile(extra, []byte(strings.Replace(dirtyFile, "func f", "func g", 1)), 0o666); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", root, "-baseline", bpath}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 for fresh finding; stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "q.go") || strings.Contains(out.String(), "p.go:") {
		t.Fatalf("only the fresh finding should print: %s", out.String())
	}
}

func TestListAndSelection(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range []string{"determtaint", "errwrapcheck", "mutexguard", "lintdirective"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}
	if code := run([]string{"-enable", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("-enable nosuch exit %d, want 2", code)
	}
	// Disabling the reporting analyzer silences the dirty module.
	root := writeModule(t, map[string]string{"p/p.go": dirtyFile})
	out.Reset()
	if code := run([]string{"-root", root, "-disable", "errwrapcheck"}, &out, &errb); code != 0 {
		t.Fatalf("disabled run exit %d; stdout: %s", code, out.String())
	}
}
