// Command iddqlint is the multichecker driver for the iddqsyn analyzer
// suite (internal/lint): project-specific static checks that enforce the
// determinism, panic, cancellation, locking and error-wrapping policies
// the optimizer's bit-identical checkpoint resume depends on.
//
// Usage:
//
//	iddqlint [flags] [packages...]
//
// Packages are directory patterns relative to the module root: "./..."
// (the default), "./internal/...", or plain directories like
// "./internal/atpg". The whole module slice is loaded and type-checked
// once; analyzers run in dependency order, in parallel across packages,
// so cross-package facts (e.g. determtaint's "this function derives from
// time.Now") are always complete when a dependent package is checked.
//
// Flags:
//
//	-list             list analyzers and exit
//	-enable names     comma-separated analyzers to run (default: all)
//	-disable names    comma-separated analyzers to skip
//	-root dir         module root (default: current directory)
//	-parallel n       max packages analyzed concurrently (default GOMAXPROCS)
//	-json             emit findings as JSON instead of text
//	-sarif file       write a SARIF 2.1.0 log to file ("-" for stdout)
//	-baseline file    subtract grandfathered findings recorded in file
//	-baseline-update  rewrite the baseline file from current findings
//	-fact-debug       dump exported facts to stderr after the run
//	-escapecheck      diff hotalloc against the compiler's escape
//	                  analysis (go build -gcflags=-m=1); exit 1 on an
//	                  analyzer false negative
//	-racecheck        run the race-soak cross-check: the seeded race
//	                  corpus plus chaos/serve/torture-lite workloads
//	                  under `go test -race`, re-attributing every GORACE
//	                  report to a sharedstate candidate; exit 1 on an
//	                  unobserved seed or an unexplained dynamic race
//	-racecheck-log d  write each scope's raw -race output to d/gorace-<scope>.log
//	-racecheck-scopes comma-separated scope names to run (default: all)
//	-timing           print a per-analyzer wall-clock breakdown after
//	                  the run, to keep the lint CI budget honest
//
// The exit status is 0 when the tree is clean (or fully absorbed by the
// baseline), 1 when findings were reported, and 2 on usage, load,
// type-check or analyzer failure — the same convention as go vet, so
// `make lint` and CI can distinguish "dirty tree" from "broken tooling".
//
// Individual findings can be suppressed with a reasoned directive on or
// directly above the flagged line:
//
//	//lint:ignore <analyzer> <reason>
//
// The analyzer name must match exactly; unused, malformed or
// unknown-name directives are themselves findings (analyzer
// "lintdirective").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"iddqsyn/internal/lint"
	"iddqsyn/internal/lint/analysis"
)

// toolVersion is reported in SARIF logs.
const toolVersion = "4.0.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iddqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	root := fs.String("root", "", "module root (default: current directory)")
	parallel := fs.Int("parallel", 0, "max packages analyzed concurrently (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "baseline file of grandfathered findings")
	baselineUpdate := fs.Bool("baseline-update", false, "rewrite the baseline file from current findings")
	factDebug := fs.Bool("fact-debug", false, "dump exported facts to stderr after the run")
	escapeCheck := fs.Bool("escapecheck", false, "cross-check hotalloc against the compiler's escape analysis (-gcflags=-m=1)")
	raceCheck := fs.Bool("racecheck", false, "cross-check sharedstate against the race detector (seeded corpus + race soaks)")
	raceLog := fs.String("racecheck-log", "", "directory for raw GORACE output artifacts (gorace-<scope>.log)")
	raceScopes := fs.String("racecheck-scopes", "", "comma-separated racecheck scope names to run (default: all)")
	timing := fs.Bool("timing", false, "print a per-analyzer wall-clock breakdown after the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-14s %s\n", analysis.DirectiveAnalyzer,
			"(framework) malformed, unknown-name and unused //lint:ignore directives")
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	dir := *root
	if dir == "" {
		if dir, err = os.Getwd(); err != nil {
			fmt.Fprintln(stderr, "iddqlint:", err)
			return 2
		}
	}
	if dir, err = filepath.Abs(dir); err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *escapeCheck {
		return runEscapeCheck(dir, patterns, stdout, stderr)
	}
	if *raceCheck {
		return runRaceCheck(dir, *raceScopes, *raceLog, stdout, stderr)
	}

	prog, err := analysis.LoadModule(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	if len(prog.Roots) == 0 {
		fmt.Fprintln(stderr, "iddqlint: no packages matched", strings.Join(patterns, " "))
		return 2
	}
	opts := analysis.Options{
		Parallel:       *parallel,
		Applies:        lint.Applies,
		KnownAnalyzers: lint.Names(),
		RootsOnly:      true,
	}
	if *factDebug {
		opts.FactDebug = stderr
	}
	var timings *timingTable
	if *timing {
		timings = newTimingTable()
		opts.OnTiming = timings.add
	}
	findings, err := prog.Run(analyzers, opts)
	if err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	if timings != nil {
		timings.write(stderr)
	}

	bpath := *baselinePath
	if bpath == "" && *baselineUpdate {
		bpath = filepath.Join(dir, analysis.BaselinePathDefault)
	}
	if *baselineUpdate {
		f, err := os.Create(bpath)
		if err == nil {
			err = analysis.WriteBaseline(f, findings, dir)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "iddqlint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "iddqlint: wrote %d finding(s) to %s\n", len(findings), bpath)
		return 0
	}
	if bpath != "" {
		f, err := os.Open(bpath)
		if err != nil {
			fmt.Fprintln(stderr, "iddqlint:", err)
			return 2
		}
		baseline, err := analysis.ParseBaseline(f)
		_ = f.Close() // read-only

		if err != nil {
			fmt.Fprintf(stderr, "iddqlint: %s: %v\n", bpath, err)
			return 2
		}
		var absorbed int
		findings, absorbed = baseline.Filter(findings, dir)
		if absorbed > 0 {
			fmt.Fprintf(stderr, "iddqlint: baseline absorbed %d finding(s) (%d recorded)\n",
				absorbed, baseline.Len())
		}
	}

	if *sarifPath != "" {
		w := stdout
		var closer io.Closer
		if *sarifPath != "-" {
			f, err := os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintln(stderr, "iddqlint:", err)
				return 2
			}
			w, closer = f, f
		}
		err := analysis.WriteSARIF(w, findings, analyzers, toolVersion, dir)
		if closer != nil {
			if cerr := closer.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "iddqlint:", err)
			return 2
		}
	}
	// Text or JSON findings go to stdout unless SARIF already claimed it.
	if *sarifPath != "-" {
		if *jsonOut {
			if err := writeJSON(stdout, findings, dir); err != nil {
				fmt.Fprintln(stderr, "iddqlint:", err)
				return 2
			}
		} else {
			for _, f := range findings {
				fmt.Fprintln(stdout, f)
			}
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runEscapeCheck diffs the hotalloc allocation model against the
// compiler's escape analysis. Exit 0 when every compiler heap diagnostic
// inside a hot function body is covered by an analyzer site, 1 when the
// analyzer missed one (a false negative), 2 on tooling failure.
func runEscapeCheck(dir string, patterns []string, stdout, stderr io.Writer) int {
	rep, err := lint.EscapeCheck(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "iddqlint -escapecheck: %d hot func(s), %d analyzer site(s), %d compiler heap diag(s) in hot bodies, %d matched\n",
		rep.HotFuncs, rep.AnalyzerSites, rep.CompilerDiags, rep.Matched)
	if len(rep.FalseNegatives) == 0 {
		return 0
	}
	fmt.Fprintf(stdout, "iddqlint -escapecheck: %d false negative(s) — heap allocations the analyzer did not model:\n", len(rep.FalseNegatives))
	for _, d := range rep.FalseNegatives {
		fmt.Fprintln(stdout, "  "+d.String())
	}
	return 1
}

// runRaceCheck drives the static-vs-dynamic race cross-check. Exit 0
// when every scope meets its contract (seeds all observed and
// attributed, zero unexplained soak races), 1 on a violated contract,
// 2 on tooling failure.
func runRaceCheck(dir, scopeNames, logDir string, stdout, stderr io.Writer) int {
	scopes := lint.DefaultRaceScopes()
	if scopeNames != "" {
		byName := map[string]lint.RaceScope{}
		for _, sc := range scopes {
			byName[sc.Name] = sc
		}
		var picked []lint.RaceScope
		for _, name := range strings.Split(scopeNames, ",") {
			sc, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "iddqlint: unknown racecheck scope %q\n", name)
				return 2
			}
			picked = append(picked, sc)
		}
		scopes = picked
	}
	rep, err := lint.RaceCheck(dir, scopes, logDir)
	if err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "iddqlint -racecheck: %d static candidate field(s) module-wide, %d in the seeded corpus\n",
		rep.StaticFields, rep.SeedFields)
	for _, id := range rep.SeedsMissingStatic {
		fmt.Fprintf(stdout, "  STATIC MISS: seed %s not flagged by sharedstate\n", id)
	}
	failed := len(rep.SeedsMissingStatic) > 0
	for i := range rep.Scopes {
		sc := &rep.Scopes[i]
		fmt.Fprintf(stdout, "  scope %-12s %d race report(s), %d attributed, %d unexplained\n",
			sc.Name+":", sc.Reports, len(sc.Attributed), len(sc.Unexplained))
		if sc.Err != "" {
			fmt.Fprintf(stdout, "    BROKEN: %s\n", strings.ReplaceAll(sc.Err, "\n", "\n    "))
			failed = true
		}
		for _, a := range sc.Attributed {
			fmt.Fprintf(stdout, "    attributed: %s [%s] at %s\n", a.Field, strings.Join(a.Kinds, ","), a.Frame)
		}
		for _, a := range sc.Unexplained {
			fmt.Fprintf(stdout, "    UNEXPLAINED: %s at %s — no sharedstate candidate covers this race\n",
				a.Summary, a.Frame)
			failed = true
		}
		for _, id := range sc.MissingSeeds {
			fmt.Fprintf(stdout, "    UNOBSERVED SEED: %s never raced under the detector\n", id)
			failed = true
		}
	}
	if failed || !rep.Passed() {
		return 1
	}
	fmt.Fprintln(stdout, "iddqlint -racecheck: every dynamic race attributes to a static finding; all seeds observed")
	return 0
}

// timingTable accumulates per-analyzer wall-clock totals across the
// concurrent per-package runs.
type timingTable struct {
	mu    sync.Mutex
	total map[string]time.Duration
	pkgs  map[string]int
}

func newTimingTable() *timingTable {
	return &timingTable{total: map[string]time.Duration{}, pkgs: map[string]int{}}
}

func (t *timingTable) add(pkg *analysis.Package, a *analysis.Analyzer, elapsed time.Duration) {
	t.mu.Lock()
	t.total[a.Name] += elapsed
	t.pkgs[a.Name]++
	t.mu.Unlock()
}

func (t *timingTable) write(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.total))
	var sum time.Duration
	for name, d := range t.total {
		names = append(names, name)
		sum += d
	}
	sort.Slice(names, func(i, j int) bool { return t.total[names[i]] > t.total[names[j]] })
	fmt.Fprintf(w, "iddqlint -timing: analyzer CPU (sum across %s of parallel per-package runs)\n", sum.Round(time.Millisecond))
	for _, name := range names {
		fmt.Fprintf(w, "  %-14s %8s  over %d package(s)\n",
			name, t.total[name].Round(time.Millisecond), t.pkgs[name])
	}
}

// jsonFinding is the -json output shape, one object per finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, findings []analysis.Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Position.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File: file, Line: f.Position.Line, Column: f.Position.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	analyzers := lint.Analyzers()
	if enable != "" {
		var out []*analysis.Analyzer
		for _, name := range strings.Split(enable, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			out = append(out, a)
		}
		analyzers = out
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := lint.ByName(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			skip[name] = true
		}
		var out []*analysis.Analyzer
		for _, a := range analyzers {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
		analyzers = out
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return analyzers, nil
}
