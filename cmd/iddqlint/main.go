// Command iddqlint is the multichecker driver for the iddqsyn analyzer
// suite (internal/lint): project-specific static checks that enforce the
// determinism, panic and cancellation policies the optimizer's
// bit-identical checkpoint resume depends on.
//
// Usage:
//
//	iddqlint [-list] [-enable names] [-disable names] [packages...]
//
// Packages are directory patterns relative to the module root: "./..."
// (the default), "./internal/...", or plain directories like
// "./internal/atpg". The exit status is 0 when the tree is clean, 1 when
// findings were reported, and 2 on usage or load errors — the same
// convention as go vet, so `make lint` and CI can gate on it.
//
// Individual findings can be suppressed with a reasoned directive on or
// directly above the flagged line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iddqsyn/internal/lint"
	"iddqsyn/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("iddqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	root := fs.String("root", "", "module root (default: current directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	dir := *root
	if dir == "" {
		dir, err = os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "iddqlint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "iddqlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "iddqlint: no packages matched", strings.Join(patterns, " "))
		return 2
	}

	exit := 0
	for _, pkg := range pkgs {
		// Policy scoping happens here, per package, so the analyzers
		// themselves stay context-free and fully testable.
		var applicable []*analysis.Analyzer
		for _, a := range analyzers {
			if lint.Applies(a, pkg.Path) {
				applicable = append(applicable, a)
			}
		}
		findings, err := analysis.RunAnalyzers(applicable, []*analysis.Package{pkg})
		if err != nil {
			fmt.Fprintln(stderr, "iddqlint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			exit = 1
		}
	}
	return exit
}

func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	analyzers := lint.Analyzers()
	if enable != "" {
		var out []*analysis.Analyzer
		for _, name := range strings.Split(enable, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			out = append(out, a)
		}
		analyzers = out
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := lint.ByName(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			skip[name] = true
		}
		var out []*analysis.Analyzer
		for _, a := range analyzers {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
		analyzers = out
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return analyzers, nil
}
