// Command benchgen emits the synthetic benchmark circuits in the ISCAS85
// .bench netlist format: the named ISCAS85-like profiles, array
// multipliers, the figure-2 cell array, and custom random logic.
//
// Usage:
//
//	benchgen -list
//	benchgen c1908 > c1908.bench
//	benchgen -mult 8 > mult8x8.bench
//	benchgen -grid 4x12 > grid.bench
//	benchgen -random inputs=20,outputs=8,gates=300,depth=15,seed=7 > r.bench
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/isc"
	"iddqsyn/internal/verilog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	list := flag.Bool("list", false, "list the known ISCAS85-like profiles")
	mult := flag.Int("mult", 0, "emit an NxN array multiplier")
	grid := flag.String("grid", "", "emit a figure-2 cell array, RxC")
	random := flag.String("random", "", "emit random logic: inputs=,outputs=,gates=,depth=,seed=")
	format := flag.String("format", "bench", "output format: bench, isc, or verilog")
	flag.Parse()

	if *list {
		for _, name := range circuits.Names() {
			p, _ := circuits.ProfileFor(name)
			fmt.Printf("%-8s %4d inputs %4d outputs %5d gates depth %d\n",
				p.Name, p.Inputs, p.Outputs, p.Gates, p.Depth)
		}
		return nil
	}

	var c *circuit.Circuit
	switch {
	case *mult > 0:
		var err error
		c, err = circuits.ArrayMultiplier(*mult)
		if err != nil {
			return err
		}
	case *grid != "":
		r, col, err := parseDims(*grid)
		if err != nil {
			return err
		}
		c, err = circuits.Grid2D(r, col, nil)
		if err != nil {
			return err
		}
	case *random != "":
		spec, err := parseSpec(*random)
		if err != nil {
			return err
		}
		var err2 error
		c, err2 = circuits.RandomLogic(spec)
		if err2 != nil {
			return err2
		}
	case flag.NArg() == 1:
		var err error
		c, err = circuits.ISCAS85Like(flag.Arg(0))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("nothing to generate; see -h")
	}
	switch *format {
	case "bench":
		return bench.Write(os.Stdout, c)
	case "isc":
		return isc.Write(os.Stdout, c)
	case "verilog":
		return verilog.Write(os.Stdout, c)
	}
	return fmt.Errorf("unknown format %q", *format)
}

func parseDims(s string) (rows, cols int, err error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("grid dims %q: want RxC", s)
	}
	rows, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	cols, err = strconv.Atoi(parts[1])
	return rows, cols, err
}

func parseSpec(s string) (circuits.Spec, error) {
	spec := circuits.Spec{Name: "random"}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return spec, fmt.Errorf("random spec %q: want key=value", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return spec, fmt.Errorf("random spec %q: %w", kv, err)
		}
		switch parts[0] {
		case "inputs":
			spec.Inputs = n
		case "outputs":
			spec.Outputs = n
		case "gates":
			spec.Gates = n
		case "depth":
			spec.Depth = n
		case "seed":
			spec.Seed = int64(n)
		default:
			return spec, fmt.Errorf("random spec: unknown key %q", parts[0])
		}
	}
	return spec, nil
}
