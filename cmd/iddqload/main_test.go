package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/obs"
)

// TestLoadSmoke drives the real harness path end to end against an
// in-process iddqserve: open-loop submissions over real loopback HTTP,
// SSE-terminated latency measurement, /metricz queue-depth sampling,
// and /tracez collection — then checks the report invariants the CI
// smoke relies on: completions happened, quantiles are non-zero and
// ordered, and at least one retained slowest trace explains >=90% of
// its request's end-to-end latency through its spans.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke needs a couple seconds of wall time")
	}
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "c17.bench")
	if err := os.WriteFile(benchPath, []byte(bench.Format(circuits.C17())), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := &config{
		rate:            25,
		duration:        1500 * time.Millisecond,
		tenants:         2,
		seed:            1,
		benchPath:       benchPath,
		gens:            6,
		sloP99:          30 * time.Second,
		pr:              8,
		out:             filepath.Join(dir, "LOAD_test.json"),
		inprocWorkers:   2,
		inprocQueueCap:  256,
		inprocCkptEvery: 50,
	}
	base, shutdown, err := bootInprocess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	netlist, err := os.ReadFile(cfg.benchPath)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := runStep(cfg, base, string(netlist), cfg.rate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed == 0 {
		t.Fatalf("no completions: %+v", sr)
	}
	ls := sr.LatencySeconds
	if ls.P50 <= 0 || ls.P99 <= 0 {
		t.Fatalf("quantiles must be non-zero with completions: %+v", ls)
	}
	if ls.P50 > ls.P90 || ls.P90 > ls.P99 || ls.P99 > ls.P999 {
		t.Fatalf("quantiles out of order: %+v", ls)
	}
	if sr.AchievedRate <= 0 {
		t.Fatalf("achieved rate must be positive: %+v", sr)
	}
	if !sr.SLOMet {
		t.Fatalf("a 30s SLO must hold for ms-scale jobs: %+v", sr)
	}

	rep := &loadReport{Steps: []stepReport{*sr}}
	if err := collectTraces(cfg, base, rep); err != nil {
		t.Fatalf("collectTraces: %v", err)
	}
	if len(rep.SlowestTraces) == 0 {
		t.Fatal("no slowest traces retained; tracing should be armed in-process")
	}
	bestCov := 0.0
	for _, tv := range rep.SlowestTraces {
		if tv.Root != "serve.job" {
			t.Fatalf("unexpected root span %q", tv.Root)
		}
		if tv.DurationMS <= 0 {
			t.Fatalf("trace %d has non-positive duration", tv.Trace)
		}
		if tv.CoveragePct > bestCov {
			bestCov = tv.CoveragePct
		}
	}
	if bestCov < 90 {
		t.Fatalf("no retained trace explains >=90%% of its e2e latency (best %.1f%%)", bestCov)
	}

	if err := writeJSON(cfg.out, rep); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(cfg.out); err != nil || st.Size() == 0 {
		t.Fatalf("report not written: %v", err)
	}
}

func traceFixture() obs.TraceRecord {
	ms := int64(time.Millisecond)
	return obs.TraceRecord{
		Trace: 1, Root: "serve.job", Dur: 100 * ms,
		Spans: []obs.SpanRecord{
			{Trace: 1, Span: 1, Parent: 0, Name: "serve.job", Dur: 100 * ms},
			{Trace: 1, Span: 2, Parent: 1, Name: "serve.admit", Dur: 5 * ms},
			{Trace: 1, Span: 3, Parent: 1, Name: "queue.wait", Dur: 5 * ms},
			{Trace: 1, Span: 4, Parent: 1, Name: "serve.attempt", Dur: 80 * ms},
			{Trace: 1, Span: 5, Parent: 4, Name: "evolution.evaluate", Dur: 20 * ms},
			{Trace: 1, Span: 6, Parent: 4, Name: "evolution.evaluate", Dur: 20 * ms},
		},
	}
}

// TestSummarizeTrace checks the coverage computation on a synthetic
// trace: the root's direct children explain 90% of the root duration,
// grandchildren are aggregated but excluded from coverage.
func TestSummarizeTrace(t *testing.T) {
	tr := traceFixture()
	tv := summarizeTrace(tr)
	if tv.Root != "serve.job" || tv.DurationMS != 100 {
		t.Fatalf("root mis-summarized: %+v", tv)
	}
	if tv.CoveragePct != 90 {
		t.Fatalf("coverage: got %.1f, want 90 (direct children only)", tv.CoveragePct)
	}
	byName := map[string]spanView{}
	for _, sv := range tv.Spans {
		byName[sv.Name] = sv
	}
	if byName["serve.attempt"].Count != 1 || byName["serve.attempt"].DurationMS != 80 {
		t.Fatalf("attempt aggregation wrong: %+v", byName["serve.attempt"])
	}
	if byName["evolution.evaluate"].Count != 2 || byName["evolution.evaluate"].DurationMS != 40 {
		t.Fatalf("grandchild aggregation wrong: %+v", byName["evolution.evaluate"])
	}
	if len(tv.Spans) > 1 && tv.Spans[0].DurationMS < tv.Spans[1].DurationMS {
		t.Fatalf("spans must be sorted slowest-first: %+v", tv.Spans)
	}
}
