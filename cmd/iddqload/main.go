// Command iddqload is the open-loop saturation harness for iddqserve:
// it submits partition-synthesis jobs at a configured arrival rate
// (seed-deterministic exponential inter-arrivals, multiple tenants, no
// closed-loop backoff — late responses never slow the schedule down, so
// queueing delay shows up as latency instead of hiding in the load
// generator), measures end-to-end latency from POST to terminal SSE
// event, and writes a LOAD_<n>.json report: p50/p90/p99/p99.9, achieved
// vs offered rate, 429/Retry-After and storage-shed 503 counts, the
// queue-depth timeline, and the slowest retained causal traces with
// their span decomposition.
//
// Usage:
//
//	iddqload -addr http://127.0.0.1:8080 -rate 5 -duration 10s
//	iddqload -inprocess -rate 8 -duration 5s -out LOAD_8.json
//	iddqload -inprocess -sweep -rate 2 -rate-max 64 -slo-p99 2s
//
// -inprocess boots a real iddqserve service (serve.Server behind a
// loopback HTTP listener, tracing armed) so CI can measure saturation
// without orchestrating processes. -sweep steps the arrival rate by
// -rate-factor until the p99 SLO breaks or submissions are mostly
// rejected, reporting the maximum sustainable throughput.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iddqsyn/internal/obs"
	"iddqsyn/internal/serve"
)

// Report format identity.
const (
	loadFormat  = "iddqsyn-load-report"
	loadVersion = 1
)

// perRequestTimeout bounds one request's submit + SSE wait; a request
// beyond it counts as failed, never wedges the harness.
const perRequestTimeout = 2 * time.Minute

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iddqload:", err)
		os.Exit(1)
	}
}

type config struct {
	addr       string
	inprocess  bool
	rate       float64
	rateMax    float64
	rateFactor float64
	sweep      bool
	duration   time.Duration
	tenants    int
	seed       int64
	benchPath  string
	gens       int
	sloP99     time.Duration
	pr         int
	out        string
	summaryOut string
	tracezOut  string

	inprocWorkers   int
	inprocQueueCap  int
	inprocCkptEvery int
}

func parseFlags() *config {
	c := &config{}
	flag.StringVar(&c.addr, "addr", "", "target iddqserve base URL (e.g. http://127.0.0.1:8080); empty requires -inprocess")
	flag.BoolVar(&c.inprocess, "inprocess", false, "boot an in-process iddqserve over a loopback listener and load it")
	flag.Float64Var(&c.rate, "rate", 4, "offered arrival rate in requests/second (the sweep's starting rate)")
	flag.Float64Var(&c.rateMax, "rate-max", 64, "sweep: stop stepping beyond this rate")
	flag.Float64Var(&c.rateFactor, "rate-factor", 1.6, "sweep: multiply the rate by this factor per step")
	flag.BoolVar(&c.sweep, "sweep", false, "step the rate until the p99 SLO breaks; report max sustainable throughput")
	flag.DurationVar(&c.duration, "duration", 10*time.Second, "offered-load duration per step")
	flag.IntVar(&c.tenants, "tenants", 2, "number of distinct tenants submitting")
	flag.Int64Var(&c.seed, "seed", 1, "seed for the deterministic arrival schedule and spec mix")
	flag.StringVar(&c.benchPath, "bench", "benchmarks/c432.bench", "bench netlist submitted by every request")
	flag.IntVar(&c.gens, "gens", 12, "evolution generations per job (small = ms-scale jobs)")
	flag.DurationVar(&c.sloP99, "slo-p99", 2*time.Second, "p99 end-to-end latency SLO")
	flag.IntVar(&c.pr, "pr", 8, "report index n in LOAD_<n>.json")
	flag.StringVar(&c.out, "out", "", "report path (default LOAD_<pr>.json)")
	flag.StringVar(&c.summaryOut, "summary", "", "also write a compact latency summary JSON here (bench.sh embeds it)")
	flag.StringVar(&c.tracezOut, "tracez-out", "", "after the run, save the /tracez Chrome trace_event export here")
	flag.IntVar(&c.inprocWorkers, "inproc-workers", 2, "in-process server: job worker pool size")
	flag.IntVar(&c.inprocQueueCap, "inproc-queue-cap", serve.DefaultQueueCap, "in-process server: admission queue bound")
	flag.IntVar(&c.inprocCkptEvery, "inproc-checkpoint-every", 50, "in-process server: checkpoint cadence in generations")
	flag.Parse()
	if c.out == "" {
		c.out = fmt.Sprintf("LOAD_%d.json", c.pr)
	}
	return c
}

// latencySummary is the quantile view of one step's e2e latencies.
type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// depthSample is one point of the queue-depth timeline.
type depthSample struct {
	ElapsedMS int64   `json:"elapsed_ms"`
	Depth     float64 `json:"depth"`
}

// stepReport is one offered-rate step.
type stepReport struct {
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"` // completions per second of wall time
	Submitted    int64   `json:"submitted"`
	Completed    int64   `json:"completed"`
	Failed       int64   `json:"failed"`
	Rejected429  int64   `json:"rejected_429"`
	// Shed503 counts storage-pressure sheds (503 + Retry-After): the
	// server refusing to take on more durable state, as opposed to the
	// queue being momentarily full (429). The two ask for different
	// operator responses — wait versus add disk — so they are never
	// summed into one rejection figure.
	Shed503        int64          `json:"shed_503"`
	RetryAfterMax  int            `json:"retry_after_max_seconds,omitempty"`
	LatencySeconds latencySummary `json:"latency_seconds"`
	QueueDepth     []depthSample  `json:"queue_depth_timeline,omitempty"`
	SLOMet         bool           `json:"slo_met"`
}

// spanView aggregates a trace's spans by name for the report.
type spanView struct {
	Name       string  `json:"name"`
	Count      int     `json:"count"`
	DurationMS float64 `json:"duration_ms"`
}

// traceView is one retained slowest trace, decomposed.
type traceView struct {
	Trace       uint64     `json:"trace"`
	Root        string     `json:"root"`
	DurationMS  float64    `json:"duration_ms"`
	CoveragePct float64    `json:"coverage_pct"` // direct children / root duration
	Spans       []spanView `json:"spans"`
}

// loadReport is the LOAD_<n>.json document.
type loadReport struct {
	Format             string       `json:"format"`
	Version            int          `json:"version"`
	PR                 int          `json:"pr"`
	Mode               string       `json:"mode"` // "fixed" or "sweep"
	Target             string       `json:"target"`
	Bench              string       `json:"bench"`
	Generations        int          `json:"generations"`
	Tenants            int          `json:"tenants"`
	Seed               int64        `json:"seed"`
	SLOP99Seconds      float64      `json:"slo_p99_seconds"`
	Steps              []stepReport `json:"steps"`
	MaxSustainableRate float64      `json:"max_sustainable_rate,omitempty"`
	SlowestTraces      []traceView  `json:"slowest_traces,omitempty"`
}

func run() error {
	cfg := parseFlags()
	netlist, err := os.ReadFile(cfg.benchPath)
	if err != nil {
		return err
	}
	base := cfg.addr
	var shutdown func()
	if cfg.inprocess {
		if base != "" {
			return errors.New("-addr and -inprocess are mutually exclusive")
		}
		base, shutdown, err = bootInprocess(cfg)
		if err != nil {
			return err
		}
		defer shutdown()
	}
	if base == "" {
		return errors.New("no target: set -addr or -inprocess")
	}
	base = strings.TrimRight(base, "/")

	rep := &loadReport{
		Format: loadFormat, Version: loadVersion, PR: cfg.pr,
		Mode: "fixed", Target: base,
		Bench: filepath.Base(cfg.benchPath), Generations: cfg.gens,
		Tenants: cfg.tenants, Seed: cfg.seed,
		SLOP99Seconds: cfg.sloP99.Seconds(),
	}
	if cfg.sweep {
		rep.Mode = "sweep"
	}

	rate := cfg.rate
	for step := 0; ; step++ {
		fmt.Fprintf(os.Stderr, "iddqload: step %d — offered %.2f req/s for %s\n",
			step+1, rate, cfg.duration)
		sr, err := runStep(cfg, base, string(netlist), rate, step)
		if err != nil {
			return err
		}
		rep.Steps = append(rep.Steps, *sr)
		fmt.Fprintf(os.Stderr, "iddqload:   completed %d/%d  p50 %.1fms  p99 %.1fms  429s %d  shed503s %d  slo_met %v\n",
			sr.Completed, sr.Submitted, 1e3*sr.LatencySeconds.P50, 1e3*sr.LatencySeconds.P99,
			sr.Rejected429, sr.Shed503, sr.SLOMet)
		if sr.SLOMet {
			rep.MaxSustainableRate = rate
		}
		if !cfg.sweep {
			break
		}
		// The sweep stops at the first step that breaks the SLO or whose
		// offered load is mostly bounced at the door — beyond either, a
		// higher rate only measures the rejection path (429 or shed 503).
		if !sr.SLOMet || (sr.Submitted > 0 && (sr.Rejected429+sr.Shed503)*2 > sr.Submitted) {
			break
		}
		rate *= cfg.rateFactor
		if rate > cfg.rateMax {
			break
		}
	}

	if err := collectTraces(cfg, base, rep); err != nil {
		fmt.Fprintf(os.Stderr, "iddqload: trace collection failed: %v\n", err)
	}

	if err := writeJSON(cfg.out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "iddqload: wrote %s\n", cfg.out)
	if cfg.summaryOut != "" {
		last := rep.Steps[len(rep.Steps)-1]
		if err := writeJSON(cfg.summaryOut, struct {
			OfferedRate    float64        `json:"offered_rate"`
			AchievedRate   float64        `json:"achieved_rate"`
			LatencySeconds latencySummary `json:"latency_seconds"`
		}{last.OfferedRate, last.AchievedRate, last.LatencySeconds}); err != nil {
			return err
		}
	}
	if rep.Mode == "sweep" {
		fmt.Fprintf(os.Stderr, "iddqload: max sustainable rate under p99<=%s: %.2f req/s\n",
			cfg.sloP99, rep.MaxSustainableRate)
	}
	var total int64
	for _, s := range rep.Steps {
		total += s.Completed
	}
	if total == 0 {
		return errors.New("no request completed; the target is down or overloaded beyond measurement")
	}
	return nil
}

// bootInprocess starts a full serve.Server (tracing armed) behind a real
// loopback listener, so the measured path includes the HTTP stack.
func bootInprocess(cfg *config) (string, func(), error) {
	dir, err := os.MkdirTemp("", "iddqload-*")
	if err != nil {
		return "", nil, err
	}
	o := obs.New(obs.NewRunID(), nil, nil)
	o.SetTracer(obs.NewTracer(obs.TracerConfig{}))
	s, err := serve.New(serve.Config{
		Dir:             filepath.Join(dir, "data"),
		Workers:         cfg.inprocWorkers,
		QueueCap:        cfg.inprocQueueCap,
		CheckpointEvery: cfg.inprocCkptEvery,
		Seed:            cfg.seed,
		Obs:             o,
	})
	if err != nil {
		_ = os.RemoveAll(dir)
		return "", nil, err
	}
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		_ = os.RemoveAll(dir)
		return "", nil, err
	}
	srv := obs.HardenedServerMax(s.Handler(), serve.MaxSubmitBytes)
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "iddqload: in-process iddqserve on %s (%d workers, data in %s)\n",
		base, cfg.inprocWorkers, dir)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		s.Close()
		_ = os.RemoveAll(dir)
	}
	return base, shutdown, nil
}

// runStep offers cfg.duration of open-loop load at the given rate.
func runStep(cfg *config, base, netlist string, rate float64, step int) (*stepReport, error) {
	// The schedule is deterministic in (seed, step): exponential
	// inter-arrivals and the tenant assignment replay exactly.
	rng := rand.New(rand.NewSource(cfg.seed + int64(step)*7919))
	reg := obs.NewRegistry()
	lat := reg.Histogram("e2e.seconds", obs.ExpBuckets(1e-3, 1.25, 56))

	var (
		submitted, completed, failed, rejected atomic.Int64
		shed                                   atomic.Int64
		retryAfterMax                          atomic.Int64
		maxLatNanos                            atomic.Int64
		wg                                     sync.WaitGroup
	)
	stepCtx, stopStep := context.WithCancel(context.Background())
	defer stopStep()

	// Queue-depth timeline: sampled from the live /metricz gauge.
	var depthMu sync.Mutex
	var depths []depthSample
	wallStart := time.Now()
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stepCtx.Done():
				return
			case <-tick.C:
				if d, ok := fetchQueueDepth(base); ok {
					depthMu.Lock()
					depths = append(depths, depthSample{
						ElapsedMS: time.Since(wallStart).Milliseconds(), Depth: d,
					})
					depthMu.Unlock()
				}
			}
		}
	}()

	client := &http.Client{}
	deadline := time.Now().Add(cfg.duration)
	for i := 0; time.Now().Before(deadline); i++ {
		// Open loop: the next arrival is scheduled from the seeded
		// exponential distribution regardless of how the previous
		// requests are doing.
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		time.Sleep(wait)
		if !time.Now().Before(deadline) {
			break
		}
		spec := &serve.JobSpec{
			Netlist:     netlist,
			Generations: cfg.gens,
			// A unique seed per request defeats the content-hash result
			// cache, so every submission is real synthesis work.
			Seed:   int64(step)*1_000_000 + int64(i) + 2,
			Tenant: fmt.Sprintf("tenant-%d", rng.Intn(cfg.tenants)),
		}
		submitted.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, status, retryAfter, err := oneRequest(client, base, spec)
			switch {
			case err == nil && (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable):
				if status == http.StatusServiceUnavailable {
					shed.Add(1)
				} else {
					rejected.Add(1)
				}
				for {
					old := retryAfterMax.Load()
					if int64(retryAfter) <= old || retryAfterMax.CompareAndSwap(old, int64(retryAfter)) {
						break
					}
				}
			case err == nil:
				completed.Add(1)
				lat.Observe(d.Seconds())
				for {
					old := maxLatNanos.Load()
					if int64(d) <= old || maxLatNanos.CompareAndSwap(old, int64(d)) {
						break
					}
				}
			default:
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)
	stopStep()
	<-samplerDone

	hs := reg.Snapshot().Histograms["e2e.seconds"]
	sum := latencySummary{
		P50: hs.Quantile(0.50), P90: hs.Quantile(0.90),
		P99: hs.Quantile(0.99), P999: hs.Quantile(0.999),
		Max: time.Duration(maxLatNanos.Load()).Seconds(),
	}
	if hs.Count > 0 {
		sum.Mean = hs.Sum / float64(hs.Count)
	}
	depthMu.Lock()
	depthsOut := depths
	depthMu.Unlock()
	return &stepReport{
		OfferedRate:    rate,
		AchievedRate:   float64(completed.Load()) / wall.Seconds(),
		Submitted:      submitted.Load(),
		Completed:      completed.Load(),
		Failed:         failed.Load(),
		Rejected429:    rejected.Load(),
		Shed503:        shed.Load(),
		RetryAfterMax:  int(retryAfterMax.Load()),
		LatencySeconds: sum,
		QueueDepth:     depthsOut,
		SLOMet:         completed.Load() > 0 && sum.P99 <= cfg.sloP99.Seconds(),
	}, nil
}

// oneRequest submits a spec and, when admitted, follows the job's SSE
// stream to its terminal event. The returned duration is the full
// client-observed latency: submit → result published.
func oneRequest(client *http.Client, base string, spec *serve.JobSpec) (time.Duration, int, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, 0, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), perRequestTimeout)
	defer cancel()
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/jobs", strings.NewReader(string(body)))
	if err != nil {
		return 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	var st serve.JobStatus
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	_ = resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// 429: the queue is full. 503: the server is shedding under
		// storage pressure (disk budget / ENOSPC). Both carry Retry-After
		// and neither is a client error; the caller counts them apart.
		ra := 0
		_, _ = fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &ra)
		return 0, resp.StatusCode, ra, nil
	case http.StatusAccepted, http.StatusOK:
		if decErr != nil {
			return 0, resp.StatusCode, 0, decErr
		}
	default:
		return 0, resp.StatusCode, 0, fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	phase, err := followEvents(ctx, client, base, st.ID)
	if err != nil {
		return 0, resp.StatusCode, 0, err
	}
	if phase != "done" {
		return 0, resp.StatusCode, 0, fmt.Errorf("job %s ended %s", st.ID, phase)
	}
	return time.Since(t0), resp.StatusCode, 0, nil
}

// followEvents reads the job's SSE stream until a terminal event — the
// lowest-latency completion signal the service offers (no poll interval
// inflating measured latency).
func followEvents(ctx context.Context, client *http.Client, base, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	last := ""
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Phase string `json:"phase"`
		}
		if json.Unmarshal([]byte(data), &ev) == nil && ev.Phase != "" {
			last = ev.Phase
			if ev.Phase == "done" || ev.Phase == "failed" {
				return ev.Phase, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	// Stream closed at the terminal phase; trust the last event seen.
	if last == "" {
		return "", errors.New("events stream ended without a terminal event")
	}
	return last, nil
}

// fetchQueueDepth samples serve.queue.depth from /metricz.
func fetchQueueDepth(base string) (float64, bool) {
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var snap obs.MetricsSnapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return 0, false
	}
	d, ok := snap.Gauges[serve.MetricQueueDepth]
	return d, ok
}

// collectTraces pulls /tracez and folds the retained slowest traces into
// the report: per-trace duration, span aggregation by name, and the
// coverage of the root's direct children — how much of the end-to-end
// latency the trace actually explains.
func collectTraces(cfg *config, base string, rep *loadReport) error {
	resp, err := http.Get(base + "/tracez?format=json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	for _, tr := range snap.Slowest {
		rep.SlowestTraces = append(rep.SlowestTraces, summarizeTrace(tr))
	}
	if cfg.tracezOut != "" {
		f, err := os.Create(cfg.tracezOut)
		if err != nil {
			return err
		}
		werr := snap.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "iddqload: wrote %s (chrome://tracing)\n", cfg.tracezOut)
	}
	return nil
}

// summarizeTrace renders one TraceRecord for the report.
func summarizeTrace(tr obs.TraceRecord) traceView {
	var rootID uint64
	for _, sp := range tr.Spans {
		if sp.Name == tr.Root && sp.Parent == 0 {
			rootID = sp.Span
		}
	}
	agg := map[string]*spanView{}
	var childSum int64
	for _, sp := range tr.Spans {
		if sp.Span == rootID {
			continue
		}
		v := agg[sp.Name]
		if v == nil {
			v = &spanView{Name: sp.Name}
			agg[sp.Name] = v
		}
		v.Count++
		v.DurationMS += float64(sp.Dur) / 1e6
		if sp.Parent == rootID {
			childSum += sp.Dur
		}
	}
	spans := make([]spanView, 0, len(agg))
	for _, v := range agg {
		spans = append(spans, *v)
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].DurationMS > spans[b].DurationMS })
	cov := 0.0
	if tr.Dur > 0 {
		cov = 100 * float64(childSum) / float64(tr.Dur)
	}
	return traceView{
		Trace: tr.Trace, Root: tr.Root,
		DurationMS:  float64(tr.Dur) / 1e6,
		CoveragePct: cov,
		Spans:       spans,
	}
}

// writeJSON writes v indented to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
