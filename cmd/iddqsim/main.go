// Command iddqsim runs the chip-level IDDQ test flow on a partitioned
// circuit: it extracts the defect universe (bridges, gate-oxide shorts,
// stuck-on transistors), generates a compacted pseudo-random IDDQ test
// set, sizes the BIC sensors, and reports the coverage the sensors achieve
// — including, per defect class, how many injected defects the sized
// sensors actually flag.
//
// Usage:
//
//	iddqsim [-circuit c1908 | file.bench] [-method evolution|standard]
//	        [-coverage 0.995] [-maxvec 4096] [-bridges 500] [-seed 1]
//	        [-savevec test.vec] [-diagnose]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/diagnose"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/vectors"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iddqsim:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("circuit", "", "built-in circuit name (e.g. c432); otherwise read a .bench file argument")
	method := flag.String("method", "evolution", "partitioning method")
	coverage := flag.Float64("coverage", 0.995, "ATPG coverage goal")
	maxVec := flag.Int("maxvec", 4096, "random-vector budget")
	bridges := flag.Int("bridges", 500, "bridge-fault sample cap (0 = all)")
	gens := flag.Int("gens", 120, "evolution generation budget")
	seed := flag.Int64("seed", 1, "seed")
	saveVec := flag.String("savevec", "", "write the generated test set to this vector file")
	doDiagnose := flag.Bool("diagnose", false, "report the diagnostic resolution of the test set")
	topUp := flag.Bool("topup", true, "run deterministic (PODEM) top-up for random-resistant faults")
	flag.Parse()

	var c *circuit.Circuit
	var err error
	switch {
	case *name != "":
		c, err = circuits.ISCAS85Like(*name)
	case flag.NArg() == 1:
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			c, err = bench.Read(f, flag.Arg(0))
			_ = f.Close() // read-only; a close error cannot corrupt anything
		}
	default:
		err = fmt.Errorf("need -circuit or a .bench file")
	}
	if err != nil {
		return err
	}

	opt := core.Options{}
	if *method == "standard" {
		opt.Method = core.MethodStandard
	}
	eprm := evolution.DefaultParams()
	eprm.Seed = *seed
	eprm.MaxGenerations = *gens
	opt.Evolution = &eprm
	res, err := core.Synthesize(c, opt)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())

	cfg := faults.DefaultConfig()
	cfg.MaxBridges = *bridges
	rng := rand.New(rand.NewSource(*seed))
	list := faults.Universe(c, cfg, rng)
	fmt.Printf("\nfault universe: %d defects\n", len(list))

	gen, err := atpg.Generate(c, list, atpg.Options{
		TargetCoverage: *coverage, MaxVectors: *maxVec, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ATPG: %d vectors kept of %d simulated, excitation coverage %.2f%%\n",
		len(gen.Vectors), gen.Generated, 100*gen.Coverage())
	if *topUp && gen.Detected() < len(list) {
		tu, err := atpg.TopUp(c, list, gen, 2000)
		if err != nil {
			return err
		}
		fmt.Printf("deterministic top-up: +%d vectors, +%d faults detected, %d proven unexcitable, %d aborted -> coverage %.2f%%\n",
			tu.Added, tu.NewDetected, tu.ProvenUnsat, tu.Aborted, 100*gen.Coverage())
	}

	// On-chip verification: every detected fault must fail a sized sensor.
	byKind := map[faults.Kind][2]int{} // kind -> {verified, total}
	for _, d := range gen.Detections {
		f := list[d.Fault]
		hit, _, _, err := res.Chip.RunTest(gen.Vectors, []faults.Fault{f})
		if err != nil {
			return err
		}
		v := byKind[f.Kind]
		if hit {
			v[0]++
		}
		v[1]++
		byKind[f.Kind] = v
	}
	fmt.Println("on-chip detection through sized BIC sensors:")
	for _, k := range []faults.Kind{faults.Bridge, faults.GateOxideShort, faults.StuckOn} {
		v := byKind[k]
		if v[1] == 0 {
			continue
		}
		fmt.Printf("  %-10s %5d/%d flagged (%.1f%%)\n", k, v[0], v[1], 100*float64(v[0])/float64(v[1]))
	}

	if *saveVec != "" {
		f, err := os.Create(*saveVec)
		if err != nil {
			return err
		}
		if err := vectors.Write(f, c, gen.Vectors); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntest set written to %s\n", *saveVec)
	}

	if *doDiagnose {
		moduleOf := make([]int, c.NumGates())
		for i := range moduleOf {
			moduleOf[i] = res.Chip.ModuleOf(i)
		}
		dict, err := diagnose.Build(c, moduleOf, list, gen.Vectors)
		if err != nil {
			return err
		}
		r := dict.Resolve()
		fmt.Printf("\ndiagnostic resolution with per-module sensors:\n")
		fmt.Printf("  %d/%d faults detected, %d distinct syndromes, largest equivalence class %d (avg %.2f)\n",
			r.Detected, r.Faults, r.DistinctClasses, r.LargestClass,
			float64(r.Detected)/float64(max(1, r.DistinctClasses)))
	}
	return nil
}
