// Command table1 regenerates the paper's Table 1: standard vs
// evolution-based partitioning across the ISCAS85 benchmark set.
//
// Usage:
//
//	table1 [-circuits c1908,c2670] [-gens 250] [-seed 1] [-timeout 2h]
//	       [-debug-addr :6060] [-metrics run.json]
//	       [-log-format text|json] [-log-level warn]
//
// The batch is observable like iddqpart: -debug-addr serves live
// introspection of the optimizer currently running, and -metrics writes
// the batch's cumulative telemetry snapshot when it finishes.
//
// SIGINT/SIGTERM (or an expired -timeout) stops the run at the next
// generation boundary; rows computed so far are discarded, so interrupt a
// long run by narrowing -circuits instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"iddqsyn/internal/experiments"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/obscli"
	"iddqsyn/internal/report"
	"iddqsyn/internal/runctl"
)

func main() {
	circuitsFlag := flag.String("circuits", "", "comma-separated circuit subset (default: all of Table 1)")
	gens := flag.Int("gens", 0, "override evolution generation budget")
	seed := flag.Int64("seed", 1, "evolution seed")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
	csvPath := flag.String("csv", "", "also write the rows as CSV to this file")
	mdPath := flag.String("md", "", "also write the rows as a Markdown table to this file")
	var oc obscli.Config
	oc.Register(flag.CommandLine)
	flag.Parse()

	cfg := experiments.Table1Config{}
	if *circuitsFlag != "" {
		cfg.Circuits = strings.Split(*circuitsFlag, ",")
	}
	prm := experiments.Table1DefaultEvolution()
	prm.Seed = *seed
	if *gens > 0 {
		prm.MaxGenerations = *gens
	}
	cfg.Evolution = &prm

	orun, err := oc.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}

	ctx, cancelTimeout := runctl.WithTimeout(context.Background(), *timeout)
	defer cancelTimeout()
	ctx, stop := runctl.WithSignalsObs(ctx, os.Stderr, orun.Obs)
	defer stop()
	ctx = obs.NewContext(ctx, orun.Obs)

	rows, err := experiments.Table1(ctx, cfg)
	ferr := orun.Finish("table1")
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "table1:", ferr)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatTable1(rows))
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%s: evolution converged in %d generations (%d evaluations); weighted cost %.6g vs standard %.6g\n",
			r.Circuit, r.Generations, r.Evaluations, r.CostEvolution, r.CostStandard)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error { return report.Table1CSV(f, rows) }); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
	}
	if *mdPath != "" {
		if err := writeFile(*mdPath, func(f *os.File) error { return report.Table1Markdown(f, rows) }); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
	}
}

func writeFile(path string, emit func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		_ = f.Close() // the emit error is the one worth reporting
		return err
	}
	return f.Close()
}
