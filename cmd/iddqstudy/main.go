// Command iddqstudy reproduces every experiment beyond Table 1: the BIC
// sensor demo of figure 1, the group-shape effect of figure 2, the C17
// evolution trace of figures 3-5, the §5 convergence study, the §4
// ablations (Monte-Carlo descendants, lifetime), the estimator-pessimism
// bound, the optimizer comparison (evolution vs simulated annealing vs
// hill climbing), the sensor-technology table, the readout-schedule
// trade-off, the cost-aware technology-mapping study, the yield-vs-
// threshold sweep, the scan-chain study, and the delta-IDDQ comparison.
//
// Usage:
//
//	iddqstudy [-circuit c432] [-gens 120] [-seed 1] [-timeout 1h]
//	          [-study all|figure1|...] [-debug-addr :6060]
//	          [-metrics run.json] [-log-format text|json] [-log-level warn]
//
// The batch is observable like iddqpart: -debug-addr serves live
// introspection of the study currently running, and -metrics writes the
// batch's cumulative telemetry snapshot when it finishes.
//
// With -study all, a failing study does not abort the batch: every
// requested study runs, each failure is reported to stderr, and the exit
// status is nonzero if any study failed. SIGINT/SIGTERM (or an expired
// -timeout) cancels the running optimizers at their next generation
// boundary — already-computed studies keep their output, the running one
// completes on its best-so-far state, and the remaining ones are skipped.
//
// Exit status (the runctl contract, shared with iddqpart and iddqserve):
// 0 all studies passed, 1 generic failure, 2 usage error, 3 the -timeout
// budget expired, 4 stopped by the first SIGINT/SIGTERM, 5 one or more
// studies failed with a named optimizer error, 130 forced exit on the
// second signal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"iddqsyn/internal/evolution"
	"iddqsyn/internal/experiments"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/obscli"
	"iddqsyn/internal/runctl"
)

func main() {
	circuit := flag.String("circuit", "c432", "circuit for the per-circuit studies")
	gens := flag.Int("gens", 120, "evolution generation budget")
	seed := flag.Int64("seed", 1, "seed")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole batch (0 = none)")
	study := flag.String("study", "all",
		"which study to run: all, figure1, figure2, c17, convergence, ablations, pessimism, optimizers, sensors, schedule, techmap, sweep, yield, scan, delta")
	var oc obscli.Config
	oc.Register(flag.CommandLine)
	flag.Parse()

	prm := evolution.DefaultParams()
	prm.MaxGenerations = *gens
	prm.Seed = *seed

	known := map[string]bool{"all": true, "figure1": true, "figure2": true,
		"c17": true, "convergence": true, "ablations": true, "pessimism": true,
		"optimizers": true, "sensors": true, "schedule": true, "techmap": true,
		"sweep": true, "yield": true, "scan": true, "delta": true}
	if !known[*study] {
		fmt.Fprintf(os.Stderr, "iddqstudy: unknown study %q\n", *study)
		os.Exit(runctl.ExitUsage)
	}

	orun, err := oc.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iddqstudy:", err)
		os.Exit(runctl.ExitFailure)
	}

	ctx, cancelTimeout := runctl.WithTimeout(context.Background(), *timeout)
	defer cancelTimeout()
	ctx, stop := runctl.WithSignalsObs(ctx, os.Stderr, orun.Obs)
	defer stop()
	ctx = obs.NewContext(ctx, orun.Obs)

	var failed, skipped []string
	want := func(name string) bool { return *study == "all" || *study == name }
	run := func(name string, f func() error) {
		if !want(name) {
			return
		}
		if ctx.Err() != nil {
			skipped = append(skipped, name)
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "iddqstudy: %s: %v\n", name, err)
			failed = append(failed, name)
		}
		fmt.Println()
	}

	run("figure1", func() error {
		res, err := experiments.Figure1Demo()
		if err != nil {
			return err
		}
		fmt.Printf("sensor: %s\n", res.Sensor.String())
		fmt.Printf("fault-free: IDDQ=%.3gA -> %s\n", res.FaultFreeIDDQ, passFail(res.FaultFreePass))
		fmt.Printf("with bridge: IDDQ=%.3gA -> %s\n", res.DefectIDDQ, passFail(res.DefectPass))
		return nil
	})

	run("figure2", func() error {
		res, err := experiments.Figure2(3, 6)
		if err != nil {
			return err
		}
		fmt.Printf("row partition    (1 cell of each type/module): worst îDD=%.3gmA, area/sensor=%.4g\n",
			1e3*res.RowMaxIDD, res.RowSensorArea/float64(res.RowModules))
		fmt.Printf("column partition (same-type cells/module):     worst îDD=%.3gmA, area/sensor=%.4g\n",
			1e3*res.ColMaxIDD, res.ColSensorArea/float64(res.ColModules))
		fmt.Printf("per-sensor area ratio column/row = %.2f (partition 1 preferred, as in the paper)\n",
			res.AreaRatio)
		return nil
	})

	run("c17", func() error {
		res, err := experiments.C17Trace(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatC17Trace(res))
		return nil
	})

	run("convergence", func() error {
		res, err := experiments.ConvergenceFrom(ctx, *circuit, 8, prm)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d gates): %.6g -> %.6g in %d generations (%d evaluations)\n",
			res.Circuit, res.Gates, res.StartCost, res.FinalCost, res.Generations, res.Evaluations)
		return nil
	})

	run("ablations", func() error {
		mc, err := experiments.AblateMonteCarlo(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		lt, err := experiments.AblateLifetime(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s baseline %.6g  variant %.6g  (ratio %.3f)\n",
			mc.Feature, mc.Baseline, mc.Variant, mc.Variant/mc.Baseline)
		fmt.Printf("%-22s baseline %.6g  variant %.6g  (ratio %.3f)\n",
			lt.Feature, lt.Baseline, lt.Variant, lt.Variant/lt.Baseline)
		return nil
	})

	run("pessimism", func() error {
		points, err := experiments.Pessimism(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("module %2d: estimate %.3gmA | grid-aligned peak %.3gmA (x%.2f) | timing-sim peak %.3gmA (x%.2f)\n",
				p.Module, 1e3*p.Estimate, 1e3*p.Simulated, p.Ratio, 1e3*p.Timing, p.TimingRatio)
		}
		fmt.Println("(the §3.1 bound covers single transitions on the unit-delay grid; hazard")
		fmt.Println(" multiplication under loaded delays can push the timing-simulated peak above it)")
		return nil
	})

	run("optimizers", func() error {
		rows, err := experiments.OptimizerComparison(ctx, *circuit, 8, prm)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatOptimizers(rows))
		return nil
	})

	run("sensors", func() error {
		rows, err := experiments.SensorVariants(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatVariants(rows))
		return nil
	})

	run("schedule", func() error {
		rows, err := experiments.ScheduleStudy(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSchedules(rows))
		return nil
	})

	run("techmap", func() error {
		chosen, rows, err := experiments.TechmapStudy(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-8v %5d gates  evolved cost %.6g\n", r.Style, r.Gates, r.Cost)
		}
		fmt.Printf("mapper chose: %v\n", chosen)
		return nil
	})

	run("sweep", func() error {
		points, err := experiments.WeightSweep(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatWeightSweep(points))
		return nil
	})

	run("yield", func() error {
		points, zero, err := experiments.YieldStudy(ctx, *circuit, prm)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatYield(points))
		fmt.Printf("smallest zero-overkill threshold: %.3g A (paper operating point: 1 µA)\n", zero)
		return nil
	})

	run("scan", func() error {
		rows, err := experiments.ScanStudy()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScan(rows))
		return nil
	})

	run("delta", func() error {
		rows, err := experiments.DeltaStudy(ctx, *circuit, prm, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatDelta(rows))
		fmt.Println("(fixed = the paper's 1 µA comparator; delta = current-signature analysis)")
		return nil
	})

	obsFailed := false
	if err := orun.Finish(*circuit); err != nil {
		fmt.Fprintf(os.Stderr, "iddqstudy: %v\n", err)
		obsFailed = true
	}
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "iddqstudy: cancelled before %v could run\n", skipped)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "iddqstudy: %d of the requested studies failed: %v\n", len(failed), failed)
	}
	// The documented exit contract (see runctl): a batch cut short by
	// the -timeout budget or a signal reports that controlled stop, a
	// batch with failing studies reports a named optimizer failure, and
	// only a snapshot-write problem is a generic failure.
	switch cause := context.Cause(ctx); {
	case cause != nil:
		os.Exit(runctl.ExitCode(nil, cause))
	case len(failed) > 0:
		os.Exit(runctl.ExitOptimizer)
	case obsFailed:
		os.Exit(runctl.ExitFailure)
	}
}

func passFail(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}
