// Command scantool performs scan-chain DFT on a sequential .bench
// netlist (ISCAS89 style, with DFF lines): it orders the scan chain with
// the nearest-neighbour heuristic, materialises the scan multiplexers
// into the netlist, reports the wiring saved and the scan test-time
// economics, and emits the scan-inserted design.
//
// Usage:
//
//	scantool [-circuit s1196 | design.bench] [-o out.bench]
//	         [-vectors 100] [-clk 10e-9]
package main

import (
	"flag"
	"fmt"
	"os"

	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/seq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scantool:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("circuit", "", "built-in ISCAS89-like circuit (e.g. s1196)")
	out := flag.String("o", "", "write the scan-inserted netlist here (default: stdout summary only)")
	vectors := flag.Int("vectors", 100, "test vectors for the time estimate")
	clk := flag.Float64("clk", 10e-9, "scan clock period, seconds")
	gens := flag.Int("gens", 60, "evolution budget for the core partitioning")
	flag.Parse()

	var s *seq.Sequential
	var err error
	switch {
	case *name != "":
		s, err = seq.ISCAS89Like(*name)
	case flag.NArg() == 1:
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			s, err = seq.ReadBench(f, flag.Arg(0))
			_ = f.Close() // read-only; a close error cannot corrupt anything
		}
	default:
		err = fmt.Errorf("need -circuit or a .bench file")
	}
	if err != nil {
		return err
	}
	fmt.Println(s)

	opt, decl := seq.OrderScanChain(s, 6)
	fmt.Printf("scan chain: declaration order wiring %d, nearest-neighbour %d (%.0f%% saved)\n",
		decl.Length, opt.Length, 100*(1-float64(opt.Length)/float64(max(decl.Length, 1))))

	scanned, err := seq.InsertScan(s, opt.Order)
	if err != nil {
		return err
	}
	fmt.Printf("scan-inserted: %d gates (+%d for %d scan muxes)\n",
		scanned.Comb.NumLogicGates(),
		scanned.Comb.NumLogicGates()-s.Comb.NumLogicGates(), s.NumFFs())

	// Partition the scan-inserted core for IDDQ sensors.
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = *gens
	res, err := core.Synthesize(scanned.Comb, core.Options{Evolution: &eprm})
	if err != nil {
		return err
	}
	fmt.Print(res.Report())

	var maxSettle float64
	for i := range res.Chip.Sensors {
		if s := res.Chip.Sensors[i].Settle; s > maxSettle {
			maxSettle = s
		}
	}
	total, err := seq.ScanTestTime(*vectors, s.NumFFs(), *clk, res.Costs.DBIc, maxSettle)
	if err != nil {
		return err
	}
	fmt.Printf("IDDQ test: %d scan vectors in %.3g s (%.3g s/vector; scan load %.0f%% of it)\n",
		*vectors, total, total/float64(*vectors),
		100*float64(s.NumFFs())**clk/(total/float64(*vectors)))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := seq.WriteBench(f, scanned); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("scan-inserted netlist written to %s\n", *out)
	}
	return nil
}
