// Command iddqtorture is the randomized crash-torture harness for
// iddqserve's durable-storage lifecycle. It runs a real iddqserve
// process over one data directory, arms rotating chaos filesystem
// schedules (fs.enospc, fs.write.short, torn renames, failing fsyncs),
// SIGKILLs the process at a seeded random point, restarts it, and
// checks the durability invariants after every cycle:
//
//   - no acknowledged job is lost: every submission the server answered
//     202/200 for is either still visible after restart or was observed
//     terminal (done/failed) before retention evicted it;
//   - no job executes twice to different results: the first result
//     observed for a content-addressed job ID is pinned, and every later
//     retrieval — resumed across a kill, or re-run after eviction —
//     must match it bit-identically;
//   - the store honors its budget: after the final settle pass the data
//     directory (journal segments, base, side files) fits -disk-budget.
//
// The whole run is seeded and replayable: -seed fixes the kill points,
// the chaos schedule rotation and the submission mix, so a failing run
// reproduces with the same flags. Exit status: 0 all invariants held,
// 1 violations (see the -report JSON), 2 usage error.
//
// Usage:
//
//	iddqtorture [-cycles 200] [-seed 1] [-dir DIR] [-bin PATH]
//	            [-disk-budget 33554432] [-retain-jobs 12]
//	            [-benchdir benchmarks] [-report TORTURE.json]
//	            [-metricz-out TORTURE_metricz.json]
//
// With -bin empty the harness builds iddqserve itself (go build), so
// `go run ./cmd/iddqtorture` works from the repository root. Short CI
// mode is just fewer cycles: `iddqtorture -cycles 25 -seed 9`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuits"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iddqtorture:", err)
	}
	os.Exit(code)
}

// pinnedResult is the bit-identity surface of a job result: every field
// that the deterministic synthesis contract promises to reproduce.
type pinnedResult struct {
	Cost        float64 `json:"cost"`
	Modules     int     `json:"modules"`
	Gates       int     `json:"gates"`
	Feasible    bool    `json:"feasible"`
	Generations int     `json:"generations"`
	Evaluations int     `json:"evaluations"`
	Degraded    bool    `json:"degraded"`
	TimedOut    bool    `json:"timed_out"`
	Report      string  `json:"report"`
}

// tracked is the harness's view of one acknowledged job.
type tracked struct {
	spec         []byte
	seenTerminal string        // "", "done" or "failed": the last terminal phase observed
	result       *pinnedResult // first done result, pinned forever
	evicted      bool          // 404 after a terminal observation: retention took it
}

// report is the invariant report written to -report.
type report struct {
	Seed          int64    `json:"seed"`
	Cycles        int      `json:"cycles"`
	KillCycles    int      `json:"kill_cycles"`
	ChaosCycles   int      `json:"chaos_cycles"`
	Acked         int      `json:"acked_jobs"`
	DoneVerified  int      `json:"done_verified"`
	ResultChecks  int      `json:"result_checks"`
	FailedSeen    int      `json:"failed_seen"`
	Evicted       int      `json:"evicted"`
	Resubmits     int      `json:"resubmits"`
	Shed503       int      `json:"shed_503"`
	MaxDirBytes   int64    `json:"max_dir_bytes"`
	FinalDirBytes int64    `json:"final_dir_bytes"`
	DiskBudget    int64    `json:"disk_budget"`
	Salvaged      uint64   `json:"journal_salvaged"`
	Violations    []string `json:"violations"`
}

// harness bundles the run state shared by the cycle loop and the
// invariant checks.
type harness struct {
	bin     string
	dir     string
	budget  int64
	retain  int
	workers int
	rng     *rand.Rand
	jobs    map[string]*tracked
	order   []string // job IDs in first-ack order, for deterministic walks
	rep     *report
}

func run() (int, error) {
	cycles := flag.Int("cycles", 200, "kill/restart cycles to run")
	seed := flag.Int64("seed", 1, "seed for kill points, chaos rotation and the submission mix (replayable)")
	dirFlag := flag.String("dir", "", "data directory reused across cycles (empty = a fresh temp dir, removed on success)")
	bin := flag.String("bin", "", "iddqserve binary (empty = build it with go build)")
	budget := flag.Int64("disk-budget", 32<<20, "disk budget handed to iddqserve and asserted at the end")
	retain := flag.Int("retain-jobs", 12, "terminal-job retention cap handed to iddqserve")
	workers := flag.Int("workers", 2, "iddqserve worker pool size")
	benchdir := flag.String("benchdir", "benchmarks", "directory holding the .bench netlists the torture jobs use")
	reportPath := flag.String("report", "TORTURE.json", "invariant report output path")
	metriczOut := flag.String("metricz-out", "TORTURE_metricz.json", "final /metricz snapshot output path")
	flag.Parse()
	if flag.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if *cycles < 1 {
		return 2, errors.New("-cycles must be >= 1")
	}

	dir := *dirFlag
	ownDir := false
	if dir == "" {
		tmp, err := os.MkdirTemp("", "iddqtorture-")
		if err != nil {
			return 1, err
		}
		dir, ownDir = tmp, true
	}
	binPath := *bin
	if binPath == "" {
		built, err := buildServe()
		if err != nil {
			return 1, err
		}
		binPath = built
	}

	h := &harness{
		bin: binPath, dir: dir, budget: *budget, retain: *retain, workers: *workers,
		rng:  rand.New(rand.NewSource(*seed)),
		jobs: make(map[string]*tracked),
		rep:  &report{Seed: *seed, Cycles: *cycles, DiskBudget: *budget, Violations: []string{}},
	}

	specs, err := loadSpecs(*benchdir)
	if err != nil {
		return 1, err
	}

	for cycle := 0; cycle < *cycles; cycle++ {
		if err := h.runCycle(cycle, specs); err != nil {
			h.violate("cycle %d: %v", cycle, err)
			break
		}
		if len(h.rep.Violations) > 0 {
			break // stop at the first violated invariant: the dir holds the evidence
		}
	}
	if len(h.rep.Violations) == 0 {
		h.finalSettle(*metriczOut)
	}

	h.rep.FinalDirBytes = dirBytes(dir)
	if data, err := json.MarshalIndent(h.rep, "", "  "); err == nil {
		if werr := os.WriteFile(*reportPath, append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "iddqtorture: report write:", werr)
		}
	}
	if n := len(h.rep.Violations); n > 0 {
		// The directory is the evidence: keep it even when we created it.
		return 1, fmt.Errorf("%d invariant violation(s); data dir kept at %s; report at %s\nfirst: %s",
			n, dir, *reportPath, h.rep.Violations[0])
	}
	if ownDir {
		_ = os.RemoveAll(dir) // clean run: nothing left to inspect
	}
	fmt.Printf("iddqtorture: %d cycles (%d kills, %d under chaos), %d jobs acked, %d done verified, %d result checks, %d evicted, 0 violations\n",
		h.rep.Cycles, h.rep.KillCycles, h.rep.ChaosCycles, h.rep.Acked, h.rep.DoneVerified, h.rep.ResultChecks, h.rep.Evicted)
	return 0, nil
}

func (h *harness) violate(format string, args ...any) {
	v := fmt.Sprintf(format, args...)
	fmt.Fprintln(os.Stderr, "iddqtorture: VIOLATION:", v)
	h.rep.Violations = append(h.rep.Violations, v)
}

// chaosSchedules is the rotation pool. Only fs.* sites: estimator or
// worker faults would change job outcomes legitimately and muddy the
// bit-identity invariant, while filesystem faults must never change a
// result — that is the property under test. Rates stay low so the
// admission self-test that -chaos arms can pass and cycles make
// progress; empty entries run chaos-free (and admission-ungated), which
// keeps the submission volume up.
func (h *harness) chaosSchedule(cycle int) string {
	pool := []string{
		"", "", "", // chaos-free majority: fast, ungated cycles
		"seed=%d,rate=0.05,sites=fs.enospc",
		"seed=%d,rate=0.05,sites=fs.write.short",
		"seed=%d,rate=0.08,sites=fs.sync|fs.rename",
		"seed=%d,rate=0.08,sites=fs.create|fs.write",
		"seed=%d,rate=0.04,sites=fs.enospc|fs.write.short|fs.rename",
	}
	pick := pool[h.rng.Intn(len(pool))]
	if pick == "" {
		return ""
	}
	h.rep.ChaosCycles++
	// A fresh derived seed per cycle: the same site list fails at
	// different operations each time.
	return fmt.Sprintf(pick, h.rng.Int63n(1<<31)+1)
}

// runCycle starts the server, checks every tracked job against the
// replayed state, feeds it new work, and SIGKILLs it at the cycle's
// seeded random kill point.
func (h *harness) runCycle(cycle int, specs *specPool) error {
	sched := h.chaosSchedule(cycle)
	p, err := h.start(sched)
	if err != nil {
		return err
	}
	// The kill timer arms immediately: checks and submissions race it,
	// so kills land at arbitrary points of the admission and run paths.
	killDelay := 50*time.Millisecond + time.Duration(h.rng.Int63n(int64(700*time.Millisecond)))
	timer := time.AfterFunc(killDelay, func() { _ = p.cmd.Process.Kill() })
	defer timer.Stop()

	h.checkInvariants(p)
	h.submitWork(p, specs)
	h.noteDirSize()

	<-p.done // the kill fired (or the server died on its own — either way the cycle ends)
	h.rep.KillCycles++
	return nil
}

// checkInvariants walks every acknowledged job against the freshly
// restarted server. Connection errors end the walk silently — the kill
// timer fired mid-check, and the next cycle re-checks everything.
func (h *harness) checkInvariants(p *proc) {
	for _, id := range h.order {
		tr := h.jobs[id]
		st, code, err := getStatus(p, id)
		if err != nil {
			return // killed mid-walk
		}
		switch code {
		case http.StatusOK:
			switch st.Phase {
			case "done":
				tr.seenTerminal = "done"
				h.verifyResult(p, id, tr)
			case "failed":
				// A failure under filesystem chaos is a legitimate outcome
				// (the fault was injected on purpose); losing the record of
				// it would not be.
				if tr.seenTerminal != "failed" {
					h.rep.FailedSeen++
				}
				tr.seenTerminal = "failed"
			}
		case http.StatusNotFound:
			if tr.seenTerminal == "" {
				h.violate("acked job %s vanished without reaching a terminal phase", id)
				return
			}
			if !tr.evicted {
				tr.evicted = true
				h.rep.Evicted++
			}
		}
	}
}

// verifyResult pins the first observed result and compares every later
// one against it — across resumes and across eviction + re-run.
func (h *harness) verifyResult(p *proc, id string, tr *tracked) {
	var res pinnedResult
	code, err := getJSON(p.url("/jobs/"+id+"/result"), &res)
	if err != nil {
		return // killed mid-read
	}
	if code == http.StatusNotFound {
		// Evicted between the status poll and the result read.
		return
	}
	if code != http.StatusOK {
		return // transient (e.g. chaos-faulted read); re-checked next cycle
	}
	if tr.result == nil {
		tr.result = &res
		h.rep.DoneVerified++
		return
	}
	h.rep.ResultChecks++
	if res != *tr.result {
		h.violate("job %s produced two different results:\n first: %+v\n now:   %+v", id, *tr.result, res)
	}
}

// submitWork feeds the cycle: a couple of fresh seeded specs, plus —
// when an evicted job with a pinned result exists — a resubmission of
// its exact spec, which the server must re-run to the identical result.
func (h *harness) submitWork(p *proc, specs *specPool) {
	if !h.waitReady(p, 5*time.Second) {
		return // gated (self-test under chaos) or killed: a quiet cycle is fine
	}
	bodies := [][]byte{specs.next(), specs.next()}
	if h.rng.Intn(4) == 0 {
		bodies = append(bodies, specs.long())
	}
	for _, id := range h.order {
		tr := h.jobs[id]
		if tr.evicted && tr.result != nil && h.rng.Intn(3) == 0 {
			bodies = append(bodies, tr.spec)
			tr.evicted = false // it is being revived; expect it visible again
			h.rep.Resubmits++
			break
		}
	}
	for _, body := range bodies {
		id, code, err := postJob(p, body)
		if err != nil {
			return // killed mid-submission: nothing was acknowledged
		}
		switch code {
		case http.StatusAccepted, http.StatusOK:
			if _, known := h.jobs[id]; !known {
				h.jobs[id] = &tracked{spec: body}
				h.order = append(h.order, id)
				h.rep.Acked++
			}
		case http.StatusServiceUnavailable:
			h.rep.Shed503++ // storage pressure shed: not acknowledged, not tracked
		}
	}
}

// noteDirSize records the high-water mark of the data directory.
func (h *harness) noteDirSize() {
	if n := dirBytes(h.dir); n > h.rep.MaxDirBytes {
		h.rep.MaxDirBytes = n
	}
}

// finalSettle runs one clean, chaos-free server: every tracked
// unfinished job gets a bounded chance to finish, maintenance settles
// the store under its budget, the final /metricz is saved, and the
// budget invariant is asserted.
func (h *harness) finalSettle(metriczOut string) {
	p, err := h.start("")
	if err != nil {
		h.violate("final settle: %v", err)
		return
	}
	defer func() {
		_ = p.cmd.Process.Kill()
		<-p.done
	}()
	if !h.waitReady(p, 30*time.Second) {
		h.violate("final settle: server never became ready")
		return
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		unfinished := 0
		for _, id := range h.order {
			tr := h.jobs[id]
			st, code, err := getStatus(p, id)
			if err != nil {
				h.violate("final settle: status read: %v", err)
				return
			}
			switch {
			case code == http.StatusNotFound:
				if tr.seenTerminal == "" {
					h.violate("acked job %s vanished without reaching a terminal phase", id)
					return
				}
			case st.Phase == "done":
				tr.seenTerminal = "done"
				h.verifyResult(p, id, tr)
			case st.Phase == "failed":
				tr.seenTerminal = "failed"
			default:
				unfinished++
			}
		}
		if unfinished == 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Let maintenance compact and evict down to the budget, then hold it
	// to the acceptance bound.
	time.Sleep(1500 * time.Millisecond)
	if n := dirBytes(h.dir); n > h.budget {
		h.violate("data directory %d bytes exceeds -disk-budget %d after settle", n, h.budget)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if raw, err := getRaw(p.url("/metricz")); err == nil {
		_ = json.Unmarshal(raw, &snap)
		h.rep.Salvaged = snap.Counters["serve.journal.salvaged"]
		if metriczOut != "" {
			if werr := os.WriteFile(metriczOut, raw, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "iddqtorture: metricz write:", werr)
			}
		}
	}
}

// ---- process driving ----

type proc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
	done   chan struct{}
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

// start launches iddqserve over the shared data directory.
func (h *harness) start(chaosSched string) (*proc, error) {
	args := []string{
		"-addr", "127.0.0.1:0", "-dir", h.dir,
		"-workers", fmt.Sprint(h.workers),
		"-checkpoint-every", "1",
		"-retain-jobs", fmt.Sprint(h.retain),
		"-disk-budget", fmt.Sprint(h.budget),
		"-maintenance-every", "200ms",
	}
	if chaosSched != "" {
		args = append(args, "-chaos", chaosSched)
	}
	cmd := exec.Command(h.bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd, stderr: &stderr, done: make(chan struct{})}
	go func() {
		defer close(p.done)
		_ = cmd.Wait() // a kill-induced exit error is the expected outcome
	}()
	sc := bufio.NewScanner(stdout)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on ") {
				// "iddqserve: listening on 127.0.0.1:NNN (data dir ...)"
				got <- strings.Fields(line)[3]
				break
			}
		}
		for sc.Scan() { // keep draining so the child never blocks on a full pipe
		}
		close(got)
	}()
	select {
	case addr, ok := <-got:
		if !ok {
			_ = cmd.Process.Kill()
			<-p.done
			return nil, fmt.Errorf("server exited before announcing its address; stderr:\n%s", stderr.String())
		}
		p.addr = addr
	case <-time.After(time.Minute):
		_ = cmd.Process.Kill()
		<-p.done
		return nil, fmt.Errorf("no listening line within a minute; stderr:\n%s", stderr.String())
	}
	return p, nil
}

// waitReady polls /healthz until 200. A false return means the gate
// never opened (chaos-armed self-test pending, storage shed, or the
// kill landed first) — callers just skip this cycle's submissions.
func (h *harness) waitReady(p *proc, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		select {
		case <-p.done:
			return false
		default:
		}
		resp, err := http.Get(p.url("/healthz"))
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return false
}

type jobStatus struct {
	Phase  string `json:"phase"`
	Detail string `json:"detail"`
}

func getStatus(p *proc, id string) (jobStatus, int, error) {
	var st jobStatus
	code, err := getJSON(p.url("/jobs/"+id), &st)
	return st, code, err
}

func getJSON(url string, out any) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }() // the decode error is the one worth reporting
	if resp.StatusCode == http.StatusOK && out != nil {
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			return resp.StatusCode, derr
		}
		return resp.StatusCode, nil
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func getRaw(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }() // the read error is the one worth reporting
	return io.ReadAll(resp.Body)
}

func postJob(p *proc, body []byte) (string, int, error) {
	resp, err := http.Post(p.url("/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer func() { _ = resp.Body.Close() }() // the decode error is the one worth reporting
	var st struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(&st); derr != nil {
			return "", resp.StatusCode, derr
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return st.ID, resp.StatusCode, nil
}

// ---- specs ----

// specPool mints the torture workload: seeded c17 specs (fast, high
// churn — these are what retention evicts) and one long c432 spec that
// spans several kill cycles, exercising checkpoint resume repeatedly.
type specPool struct {
	c17, c432 string
	seq       int64
	longBody  []byte
}

func loadSpecs(benchdir string) (*specPool, error) {
	c432, err := os.ReadFile(filepath.Join(benchdir, "c432.bench"))
	if err != nil {
		return nil, fmt.Errorf("torture needs the bench netlists: %w", err)
	}
	// The churn netlist is generated, not loaded: C17 ships in the
	// circuits package, so the harness only depends on disk for c432.
	return &specPool{c17: bench.Format(circuits.C17()), c432: string(c432)}, nil
}

func (sp *specPool) next() []byte {
	sp.seq++
	body, _ := json.Marshal(map[string]any{
		"netlist":     sp.c17,
		"name":        fmt.Sprintf("torture-c17-%d", sp.seq),
		"generations": 30,
		"seed":        sp.seq,
		"timeout":     "2m",
	})
	return body
}

// long returns the one long-running spec, byte-identical every time so
// all submissions land on the same content-addressed job.
func (sp *specPool) long() []byte {
	if sp.longBody == nil {
		sp.longBody, _ = json.Marshal(map[string]any{
			"netlist":     sp.c432,
			"name":        "torture-c432",
			"module_size": 40,
			"generations": 40,
			"seed":        3,
			"timeout":     "5m",
		})
	}
	return sp.longBody
}

// ---- misc ----

// buildServe compiles iddqserve into a temp dir (the caller's working
// directory must be the repository root, as in CI and make torture).
func buildServe() (string, error) {
	dir, err := os.MkdirTemp("", "iddqtorture-bin-")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "iddqserve")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/iddqserve").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build ./cmd/iddqserve: %w\n%s", err, out)
	}
	return bin, nil
}

// dirBytes sums the regular files directly inside dir.
func dirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if info, ierr := e.Info(); ierr == nil {
			total += info.Size()
		}
	}
	return total
}
