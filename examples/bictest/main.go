// The bictest example walks the complete on-chip IDDQ test flow of the
// paper's figure 1 on a mid-size circuit:
//
//  1. partition the circuit and size one BIC sensor per module,
//  2. extract the IDDQ defect universe (bridges, gate-oxide shorts,
//     stuck-on transistors),
//  3. generate a compacted pseudo-random IDDQ test set,
//  4. inject defects one at a time and run the test set through the chip
//     model: the sensor of the module whose ground path carries the
//     defect current must raise FAIL while all other modules PASS.
//
// Run with:
//
//	go run ./examples/bictest [-circuit c432]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
)

func main() {
	name := flag.String("circuit", "c432", "built-in circuit name")
	flag.Parse()

	c, err := circuits.ISCAS85Like(*name)
	if err != nil {
		log.Fatal(err)
	}
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = 80
	res, err := core.Synthesize(c, core.Options{Evolution: &eprm})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 200
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	fmt.Printf("\ndefect universe: %d faults\n", len(list))

	gen, err := atpg.Generate(c, list, atpg.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IDDQ test set: %d vectors (from %d random), coverage %.2f%%\n",
		len(gen.Vectors), gen.Generated, 100*gen.Coverage())

	// Silicon check: inject the first few detected defects of each class
	// and watch the sensors.
	fmt.Println("\ninjecting defects into the chip model:")
	shown := map[faults.Kind]int{}
	for _, d := range gen.Detections {
		f := list[d.Fault]
		if shown[f.Kind] >= 3 {
			continue
		}
		shown[f.Kind]++
		detected, vec, module, err := res.Chip.RunTest(gen.Vectors, []faults.Fault{f})
		if err != nil {
			log.Fatal(err)
		}
		status := "MISSED"
		if detected {
			status = fmt.Sprintf("FAIL at vector %d, module %d", vec, module)
		}
		fmt.Printf("  %-22s -> %s\n", f.String(), status)
	}

	// And the fault-free chip must pass the whole set.
	detected, _, _, err := res.Chip.RunTest(gen.Vectors, nil)
	if err != nil {
		log.Fatal(err)
	}
	if detected {
		log.Fatal("fault-free chip failed the test set")
	}
	fmt.Println("\nfault-free chip: all vectors PASS on every sensor")
}
