// Quickstart: synthesize an IDDQ-testable version of the ISCAS85 C17
// circuit — the paper's running example — with three lines of library use:
// build (or load) a circuit, call core.Synthesize, read the report.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
)

func main() {
	// C17: six NAND gates, the smallest ISCAS85 benchmark. Any circuit
	// read with bench.Read or built with circuit.NewBuilder works the
	// same way.
	c := circuits.C17()
	fmt.Println(c)

	// Default options reproduce the paper's setup: the built-in 1 µm CMOS
	// cell library, cost weights C = 9c1 + 1e5·c2 + c3 + c4 + 10c5,
	// discriminability d ≥ 10, evolution-based partitioning.
	res, err := core.Synthesize(c, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// The partition's gates, module by module.
	for mi := 0; mi < res.Partition.NumModules(); mi++ {
		fmt.Printf("module %d:", mi)
		for _, g := range res.Partition.ModuleGates(mi) {
			fmt.Printf(" %s", c.Gates[g].Name)
		}
		fmt.Println()
	}
}
