// The sequential example runs the complete DFT flow on an ISCAS89-class
// full-scan design: scan-chain ordering (wiring minimised with the same
// separation metric as the partitioner), scan-mux insertion into the
// netlist (verified function-preserving in functional mode by the seq
// package tests), IDDQ partitioning of the scan-inserted combinational
// core, and the scan test-time economics — the setting in which the
// paper's virtual-rail constraint protects the stored state.
//
// Run with:
//
//	go run ./examples/sequential [-circuit s641]
package main

import (
	"flag"
	"fmt"
	"log"

	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/seq"
)

func main() {
	name := flag.String("circuit", "s641", "built-in ISCAS89-like circuit")
	flag.Parse()

	s, err := seq.ISCAS89Like(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)

	// 1. Order the scan chain.
	opt, decl := seq.OrderScanChain(s, 6)
	fmt.Printf("scan wiring: %d (declared) -> %d (ordered)\n", decl.Length, opt.Length)

	// 2. Materialise the scan muxes.
	scanned, err := seq.InsertScan(s, opt.Order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after scan insertion: %d gates\n", scanned.Comb.NumLogicGates())

	// 3. Partition the core for BIC sensors.
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = 80
	res, err := core.Synthesize(scanned.Comb, core.Options{Evolution: &eprm})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// 4. Test economics with scan loading.
	var maxSettle float64
	for i := range res.Chip.Sensors {
		if v := res.Chip.Sensors[i].Settle; v > maxSettle {
			maxSettle = v
		}
	}
	const vectors = 200
	total, err := seq.ScanTestTime(vectors, s.NumFFs(), 10e-9, res.Costs.DBIc, maxSettle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d IDDQ vectors through the %d-bit scan chain: %.3g s total\n",
		vectors, s.NumFFs(), total)
}
