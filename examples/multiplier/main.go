// The multiplier example partitions a 16×16 parallel array multiplier —
// the architecture of the ISCAS85 benchmark C6288, the hardest circuit in
// the paper's Table 1 — and compares the evolution-based partitioning
// against the standard baseline at the same module count, reproducing the
// paper's headline comparison on a single circuit.
//
// Run with:
//
//	go run ./examples/multiplier [-n 16] [-gens 150]
package main

import (
	"flag"
	"fmt"
	"log"

	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
)

func main() {
	n := flag.Int("n", 16, "multiplier operand width")
	gens := flag.Int("gens", 150, "evolution generation budget")
	flag.Parse()

	c, err := circuits.ArrayMultiplier(*n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c)

	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = *gens
	evo, err := core.Synthesize(c, core.Options{Evolution: &eprm})
	if err != nil {
		log.Fatal(err)
	}
	std, err := core.Synthesize(c, core.Options{
		Method:  core.MethodStandard,
		Modules: evo.Partition.NumModules(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== evolution-based partitioning ===")
	fmt.Print(evo.Report())
	fmt.Println("\n=== standard partitioning (same module count) ===")
	fmt.Print(std.Report())

	ea, sa := evo.Costs.SensorArea, std.Costs.SensorArea
	fmt.Printf("\nsensor area overhead of standard over evolution: %.1f%%\n",
		100*(sa-ea)/ea)
	fmt.Printf("delay: evolution +%.2f%% vs standard +%.2f%%\n",
		100*evo.Costs.DelayOverhead, 100*std.Costs.DelayOverhead)
	fmt.Printf("test time: evolution +%.2f%% vs standard +%.2f%%\n",
		100*evo.Costs.TestTime, 100*std.Costs.TestTime)
}
