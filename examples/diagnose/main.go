// The diagnose example shows what the per-module BIC sensors buy beyond
// go/no-go testing: fault location. A defect's IDDQ signature — which
// vectors fail, and in which module's ground path the current shows up —
// is matched against a precomputed fault dictionary, typically narrowing
// the defect to a handful of electrically equivalent candidates. The same
// flow with one off-chip measurement (no module information) resolves far
// fewer classes.
//
// Run with:
//
//	go run ./examples/diagnose [-circuit c432]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/diagnose"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
)

func main() {
	name := flag.String("circuit", "c432", "built-in circuit name")
	flag.Parse()

	c, err := circuits.ISCAS85Like(*name)
	if err != nil {
		log.Fatal(err)
	}
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = 60
	res, err := core.Synthesize(c, core.Options{Evolution: &eprm, ModuleSize: 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s partitioned into %d sensor modules\n", c.Name, res.Partition.NumModules())

	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 300
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	gen, err := atpg.Generate(c, list, atpg.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d vectors, %.1f%% of %d faults excitable\n",
		len(gen.Vectors), 100*gen.Coverage(), len(list))

	moduleOf := make([]int, c.NumGates())
	for i := range moduleOf {
		moduleOf[i] = res.Chip.ModuleOf(i)
	}
	dict, err := diagnose.Build(c, moduleOf, list, gen.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	r := dict.Resolve()
	fmt.Printf("dictionary: %d distinct syndromes over %d detected faults (largest class %d)\n\n",
		r.DistinctClasses, r.Detected, r.LargestClass)

	// Play defective chip: inject a few faults and diagnose them from
	// their chip-observed syndromes.
	rng := rand.New(rand.NewSource(7))
	for shown := 0; shown < 5; {
		fi := rng.Intn(len(list))
		if len(dict.FaultSyndrome(fi)) == 0 {
			continue
		}
		shown++
		var observed diagnose.Syndrome
		for vi, v := range gen.Vectors {
			readings, err := res.Chip.ApplyVector(v, []faults.Fault{list[fi]})
			if err != nil {
				log.Fatal(err)
			}
			for _, rd := range readings {
				if !rd.Pass {
					observed = append(observed, diagnose.Observation{Vector: vi, Module: rd.Module})
				}
			}
		}
		exact := dict.ExactMatches(observed)
		hit := false
		for _, m := range exact {
			if m == fi {
				hit = true
				break
			}
		}
		fmt.Printf("injected %-22s -> %d failing measurements -> %d exact candidates (defect included: %v)\n",
			list[fi].String(), len(observed), len(exact), hit)
	}
}
