// The sweep example explores the Speed-Area-Testability design space of
// §2: the weight factors αᵢ of the global cost function steer the
// synthesis between fine-grain partitions (high discriminability, short
// test, much sensor area) and coarse-grain ones (cheap, slower to test) —
// the trade-off that motivates the paper's multi-target formulation.
//
// Run with:
//
//	go run ./examples/sweep [-circuit c432] [-gens 60]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"iddqsyn/internal/evolution"
	"iddqsyn/internal/experiments"
)

func main() {
	name := flag.String("circuit", "c432", "built-in circuit name")
	gens := flag.Int("gens", 60, "evolution generation budget per point")
	flag.Parse()

	prm := evolution.DefaultParams()
	prm.MaxGenerations = *gens
	points, err := experiments.WeightSweep(context.Background(), *name, prm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design-space sweep on %s:\n\n%s", *name, experiments.FormatWeightSweep(points))
	fmt.Println("\nreading the table: boosting α1 (area) or α5 (module count) coarsens the")
	fmt.Println("partition and saves sensor area; boosting α2 (delay) favours partitions")
	fmt.Println("whose simultaneously-switching gates are spread across modules.")
}
