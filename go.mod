module iddqsyn

go 1.22
